// Package core implements the paper's contribution: FalVolt, fault-aware
// retraining with per-layer threshold-voltage optimization for
// systolic-array SNN accelerators, together with the two baselines it is
// compared against:
//
//   - FaP    — fault-aware pruning: zero the weights mapped onto faulty
//     PEs and bypass those PEs; no retraining (Algorithm 1 with
//     trEpochs = 0).
//   - FaPIT  — fault-aware pruning plus retraining of the surviving
//     weights with the threshold voltage frozen (conventionally
//     at 1.0).
//   - FalVolt — fault-aware pruning plus retraining in which every spiking
//     layer's threshold voltage is optimized by backpropagation
//     alongside the weights (Algorithm 1).
//
// The pipeline follows the paper's tool flow (Fig. 4): derive the pruned
// weight indices from the chip's fault map, zero them, retrain (re-zeroing
// at the end of every epoch, Algorithm 1 line 13), then evaluate on the
// faulty array with bypass enabled.
//
// The Algorithm-1 engine itself now lives in internal/mitigation, where
// it is one strategy among several in the salvage zoo; this package
// aliases and delegates so the historical core API — and the campaigns
// built on it — is byte-for-byte unchanged.
package core

import (
	"fmt"
	"math/rand"

	"falvolt/internal/faults"
	"falvolt/internal/mitigation"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Method selects the mitigation strategy.
type Method = mitigation.Method

const (
	// FaP is fault-aware pruning only.
	FaP = mitigation.FaP
	// FaPIT is fault-aware pruning with retraining, fixed threshold.
	FaPIT = mitigation.FaPIT
	// FalVolt is fault-aware pruning with retraining and per-layer
	// threshold-voltage optimization.
	FalVolt = mitigation.FalVolt
)

// Config controls a mitigation run.
type Config = mitigation.Config

// EpochPoint is one point of a retraining convergence curve.
type EpochPoint = mitigation.EpochPoint

// Report summarises a mitigation run.
type Report = mitigation.Report

// EpochsToReachTarget returns the first epoch at which a convergence curve
// reaches the target accuracy, or -1 if it never does — the quantity
// behind the paper's "FalVolt is 2x faster than FaPIT" claim (Fig. 8).
func EpochsToReachTarget(curve []EpochPoint, target float64) int {
	return mitigation.EpochsToReachTarget(curve, target)
}

// Mitigate runs Algorithm 1 on model against the fault map, retraining on
// train and reporting accuracy on test. The model is modified in place
// (snapshot with Network.State first if the original is still needed).
// The array must have the same dimensions as the fault map; it is left
// fault-injected with bypass enabled and the network deployed onto it.
func Mitigate(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	train, test []snn.Sample, cfg Config) (*Report, error) {
	return mitigation.Mitigate(model, arr, fm, train, test, cfg)
}

// EvalOptions configures a faulty-array evaluation.
type EvalOptions struct {
	// Bypass selects whether faulty PEs are bypassed (pruned
	// contribution, no corruption) or left corrupting.
	Bypass bool
	// BatchSize is the evaluation batch size (0 selects 32).
	BatchSize int
	// Engine is the compute backend for the evaluation. When nil, the
	// network's and array's own engines apply (tensor.Default() if those
	// are unset too). When non-nil it is installed on both for the
	// duration and restored afterwards.
	Engine tensor.Backend
}

// EvaluateFaulty measures test accuracy of an unmitigated model deployed
// on an array with the given fault map — the vulnerability analysis path
// (Fig. 5 family). The model's float weights are not modified; the
// deployment is removed before returning.
func EvaluateFaulty(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, bypass bool, batchSize int) (float64, error) {
	return EvaluateFaultyOpts(model, arr, fm, test, EvalOptions{Bypass: bypass, BatchSize: batchSize})
}

// EvaluateFaultyOpts is EvaluateFaulty with the full option set. A
// non-nil Engine is installed on the network and the array for the
// duration of the evaluation (previous engines restored), so every
// layer of the deployed compute runs on it.
func EvaluateFaultyOpts(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, opt EvalOptions) (float64, error) {
	if err := arr.InjectFaults(fm); err != nil {
		return 0, fmt.Errorf("core: inject faults: %w", err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	return acc, nil
}

// installEngine routes the array through eng (when non-nil), returning a
// restore function.
func installEngine(arr *systolic.Array, eng tensor.Backend) func() {
	if eng == nil {
		return func() {}
	}
	prev := arr.Config().Engine
	arr.SetEngine(eng)
	return func() { arr.SetEngine(prev) }
}

// EvaluateWeightFaulty is EvaluateFaulty for stuck bits in the PE weight
// registers instead of the accumulator outputs (an extension to the
// paper's accumulator-output fault model; both registers exist in the
// Fig. 3a datapath). Weight-register faults only corrupt when a spike
// gates the faulty weight in, so at equal counts they are milder than
// accumulator faults — the Ablation-FaultSite experiment quantifies this.
func EvaluateWeightFaulty(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, bypass bool, batchSize int) (float64, error) {
	return EvaluateWeightFaultyOpts(model, arr, fm, test, EvalOptions{Bypass: bypass, BatchSize: batchSize})
}

// EvaluateWeightFaultyOpts is EvaluateWeightFaulty with the full option
// set.
func EvaluateWeightFaultyOpts(model *snn.Model, arr *systolic.Array, fm *faults.Map,
	test []snn.Sample, opt EvalOptions) (float64, error) {
	arr.ClearFaults()
	if err := arr.InjectWeightFaults(fm); err != nil {
		return 0, fmt.Errorf("core: inject weight faults: %w", err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	arr.ClearFaults()
	return acc, nil
}

// EvaluateModelFaulty measures deployed test accuracy under an
// arbitrary pluggable fault model at one (rate, seed) cell — the
// model-agnostic generalization of EvaluateFaulty. Any previous fault
// state is cleared first, and all fault state is cleared on return, so
// one array can sweep many (model × rate × seed) cells.
func EvaluateModelFaulty(model *snn.Model, arr *systolic.Array, fm faults.FaultModel,
	rate float64, seed int64, test []snn.Sample, opt EvalOptions) (float64, error) {
	arr.ClearFaults()
	if err := fm.Inject(arr, rate, seed); err != nil {
		return 0, fmt.Errorf("core: inject %s faults: %w", fm.Name(), err)
	}
	arr.SetBypass(opt.Bypass)
	restore := installEngine(arr, opt.Engine)
	defer restore()
	model.Net.Deploy(arr)
	acc := snn.EvaluateWith(opt.Engine, model.Net, test, opt.BatchSize)
	model.Net.Undeploy()
	arr.ClearFaults()
	return acc, nil
}

// BaselineConfig controls baseline (fault-free) training. Zero values
// select the paper's defaults: batch 16, LR 0.02, gradient clip 5, a
// single training lane on the process-default engine, and silence
// (install a Hooks.Progress printer to observe the loss curve).
type BaselineConfig struct {
	// Epochs is the training budget.
	Epochs int
	// LR is the learning rate (0 selects 0.02).
	LR float64
	// BatchSize is the global batch size (0 selects 16).
	BatchSize int
	// ClipNorm caps the global gradient norm. 0 always selects the
	// paper's clip of 5 — clipping cannot be disabled through
	// BaselineConfig (or the spec layer above it), only retuned; a
	// caller that needs it off uses snn.TrainConfig directly, where 0
	// means no clipping.
	ClipNorm float64
	// Loss is the training objective (nil selects snn.MSERate, the
	// paper's).
	Loss snn.Loss
	// Rng drives batch shuffling.
	Rng *rand.Rand
	// Engine is the compute backend (nil keeps the network's engine).
	Engine tensor.Backend
	// Replicas and MicroBatch configure the data-parallel replica
	// training engine (see snn.TrainConfig; every configuration runs
	// that engine — zero replicas means one lane). Replica count never
	// changes results, only wall-clock.
	Replicas   int
	MicroBatch int
	// Hooks observe the loop; the zero value trains silently.
	Hooks snn.TrainHooks
}

// TrainBaseline trains a freshly built model to its fault-free baseline
// (the paper's initial-training stage) and returns test accuracy.
func TrainBaseline(model *snn.Model, train, test []snn.Sample, cfg BaselineConfig) (float64, error) {
	if cfg.LR == 0 {
		cfg.LR = 0.02
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	_, err := snn.Train(model.Net, train, snn.TrainConfig{
		Epochs:     cfg.Epochs,
		BatchSize:  cfg.BatchSize,
		LR:         cfg.LR,
		Classes:    model.Spec.Classes,
		ClipNorm:   cfg.ClipNorm,
		Loss:       cfg.Loss,
		Rng:        cfg.Rng,
		Engine:     cfg.Engine,
		Replicas:   cfg.Replicas,
		MicroBatch: cfg.MicroBatch,
		Hooks:      cfg.Hooks,
	})
	if err != nil {
		return 0, fmt.Errorf("core: baseline training: %w", err)
	}
	return snn.Evaluate(model.Net, test, 32), nil
}
