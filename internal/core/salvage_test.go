package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

// salvageTestConfig keeps the sharding test fast: non-retraining
// strategies only, one fault model, one rate, two repeats, the shared
// 16x16 harness array.
func salvageTestConfig() spec.SalvageCampaignSpec {
	return spec.SalvageCampaignSpec{
		Models: []string{"stuckat"},
		Mitigations: []spec.MitigationSpec{
			{Kind: "fap"}, {Kind: "respawn"}, {Kind: "softsnn"},
		},
		Rates:   []float64{0.1},
		Repeats: 2,
		Array:   16,
		Epochs:  1,
		Batch:   16,
	}
}

func salvageTestBuild(h *testHarness) func() (YieldDeps, error) {
	return func() (YieldDeps, error) {
		return YieldDeps{
			Model: h.model, Baseline: h.baseline, Arr: h.arr,
			Train: h.train, Test: h.test,
			BuildModel: func() (*snn.Model, error) {
				return snn.Build(h.model.Spec, rand.New(rand.NewSource(1)))
			},
		}, nil
	}
}

func TestSalvageMitLabels(t *testing.T) {
	labels := SalvageMitLabels([]spec.MitigationSpec{
		{Kind: "falvolt"}, {Kind: "respawn"}, {Kind: "falvolt", Epochs: 4},
	})
	if want := []string{"falvolt#0", "respawn", "falvolt#2"}; !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	single := SalvageMitLabels([]spec.MitigationSpec{{Kind: "softsnn"}})
	if !reflect.DeepEqual(single, []string{"softsnn"}) {
		t.Fatalf("single label = %v", single)
	}
}

func TestSalvageTrialsDeterministic(t *testing.T) {
	cfg := salvageTestConfig()
	a := SalvageTrials(cfg, 42)
	b := SalvageTrials(cfg, 42)
	if len(a) != 1*3*1*2 {
		t.Fatalf("trial count = %d, want 6", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SalvageTrials not deterministic")
	}
	for i, tr := range a {
		if tr.ID != i {
			t.Fatalf("trial %d has ID %d (IDs must be dense)", i, tr.ID)
		}
		if tr.Seed != 42+7919*int64(i) {
			t.Fatalf("trial %d seed %d not seed-addressed", i, tr.Seed)
		}
	}
	c := SalvageTrials(cfg, 43)
	if a[0].Seed == c[0].Seed {
		t.Error("different campaign seeds must address different trial seeds")
	}
}

// TestSalvageCampaignShardMergeBitIdentical is the salvage acceptance
// gate, mirroring the yield campaign's: a salvage benchmark split into 2
// checkpointed shards on a parallel engine merges byte-identically to
// the single-process serial run.
func TestSalvageCampaignShardMergeBitIdentical(t *testing.T) {
	h := newHarness(t)
	cfg := salvageTestConfig()
	dir := t.TempDir()

	whole, err := SalvageCampaign(cfg, 42, nil, salvageTestBuild(h))
	if err != nil {
		t.Fatal(err)
	}
	rrWhole, err := campaign.Run(whole, campaign.Options{
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.MarshalResults(rrWhole.Results)
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	for i := 0; i < 2; i++ {
		c, err := SalvageCampaign(cfg, 42, nil, salvageTestBuild(h))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("salvage-shard%d.jsonl", i))
		rr, err := campaign.Run(c, campaign.Options{
			Shard:      campaign.Shard{Index: i, Count: 2},
			Checkpoint: path,
			Runner:     campaign.PoolRunner{Engine: tensor.NewParallel(2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		paths = append(paths, path)
	}
	_, merged, err := campaign.MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.MarshalResults(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded+merged salvage results differ from single-process run:\n--- merged ---\n%s\n--- single ---\n%s", got, want)
	}

	// Sanity on the metrics themselves: every trial reports the full
	// metric set and salvage never leaves accuracy below the raw floor by
	// more than numerics allow for the bypass/clamp strategies (no hard
	// guarantee — just that recovered is finite and metrics are present).
	for _, r := range rrWhole.Results {
		for _, key := range []string{"raw", "acc", "recovered", "epochs", "pruned", "remapped", "bypassed", "clamped", "mac"} {
			if _, ok := r.Metrics[key]; !ok {
				t.Fatalf("trial %d missing metric %q", r.TrialID, key)
			}
		}
		if r.Metrics["epochs"] != 0 {
			t.Errorf("trial %d: non-retraining strategy spent %v epochs", r.TrialID, r.Metrics["epochs"])
		}
	}
}
