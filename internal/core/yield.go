package core

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"sync"

	"falvolt/internal/campaign"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// Yield analysis.
//
// The paper's §I motivation: post-fabrication testing discards chips with
// stuck-at faults, and at realistic defect densities that destroys yield;
// FalVolt instead salvages faulty chips with a one-time, per-chip
// retraining keyed to the chip's fault map. This file quantifies that
// trade as a fault-sweep campaign: every simulated die is one
// seed-addressed trial (sample a fault map from the defect model,
// evaluate unmitigated, mitigate, evaluate again), so a yield study
// shards across processes and resumes from checkpoints like any other
// campaign, and the merged report is bit-identical however the dies were
// distributed.

// YieldConfig controls a yield study.
type YieldConfig struct {
	// Chips is the number of manufactured dies to simulate.
	Chips int
	// Defects models the per-die faulty-PE count (clustered defects).
	Defects faults.DefectModel
	// Clustered draws each die's fault map with spatial clustering
	// instead of uniformly.
	Clustered bool
	// Threshold is the minimum accuracy for a die to ship.
	Threshold float64
	// Mitigation selects the salvage policy applied to faulty dies.
	// Epochs/LR/BatchSize are passed through to Mitigate. Its Rng field
	// is ignored: every die retrains on a private generator seeded
	// Seed+die, so dies are independent trials whichever shard or lane
	// runs them.
	Mitigation Config
	// EvalSamples caps evaluation cost per die (0 = all test samples).
	EvalSamples int
	// Rng drives the population sampling (per-die defect counts and map
	// seeds, drawn once at campaign-planning time). When nil a generator
	// seeded with Seed+1 is constructed — reproducible from the config
	// alone.
	Rng *rand.Rand
	// Seed offsets the default Rng and the per-die mitigation seeds.
	Seed int64
}

// YieldReport summarises a yield study.
type YieldReport struct {
	Chips int
	// FaultFree is the number of dies with zero faulty PEs.
	FaultFree int
	// ShippableNoMitigation counts dies clearing the threshold with
	// faults left unmitigated (bypass off) — the discard-based flow.
	ShippableNoMitigation int
	// ShippableMitigated counts dies clearing the threshold after the
	// salvage policy.
	ShippableMitigated int
	// MeanFaulty is the mean number of faulty PEs per die.
	MeanFaulty float64
}

// YieldNoMitigation returns the yield fraction of the discard-based flow.
func (r YieldReport) YieldNoMitigation() float64 {
	if r.Chips == 0 {
		return 0
	}
	return float64(r.ShippableNoMitigation) / float64(r.Chips)
}

// YieldMitigated returns the yield fraction after salvage.
func (r YieldReport) YieldMitigated() float64 {
	if r.Chips == 0 {
		return 0
	}
	return float64(r.ShippableMitigated) / float64(r.Chips)
}

// String implements fmt.Stringer.
func (r YieldReport) String() string {
	return fmt.Sprintf("yield: %d dies, mean %.1f faulty PEs; no-mitigation %.1f%% -> mitigated %.1f%%",
		r.Chips, r.MeanFaulty, 100*r.YieldNoMitigation(), 100*r.YieldMitigated())
}

// validateYield checks the population parameters shared by the campaign
// constructors.
func validateYield(cfg YieldConfig) error {
	if cfg.Chips <= 0 {
		return fmt.Errorf("core: yield study needs chips > 0")
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		return fmt.Errorf("core: threshold %v outside (0,1]", cfg.Threshold)
	}
	return nil
}

// YieldTrials enumerates the per-die trials of a yield campaign for a
// rows x cols array: the population Rng is consumed once, here, to draw
// every die's faulty-PE count and fault-map seed, so the trial list is a
// pure function of the config and all shards agree on it. Tags record
// the faulty count; Seed addresses the die's fault map and mitigation.
func YieldTrials(rows, cols int, cfg YieldConfig) ([]campaign.Trial, error) {
	if err := validateYield(cfg); err != nil {
		return nil, err
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed + 1))
	}
	trials := make([]campaign.Trial, cfg.Chips)
	for die := 0; die < cfg.Chips; die++ {
		n := cfg.Defects.SampleFaultyCount(rng)
		if n > rows*cols {
			n = rows * cols
		}
		trials[die] = campaign.Trial{
			ID:   die,
			Key:  fmt.Sprintf("die%04d", die),
			Seed: rng.Int63(),
			Tags: map[string]string{"faulty": strconv.Itoa(n)},
		}
	}
	return trials, nil
}

// YieldDeps bundles the resources a yield campaign's workers draw on.
type YieldDeps struct {
	// Model and Arr serve lane 0 (and the whole campaign when BuildModel
	// is nil). The model is mutated during mitigation and left in the
	// last die's retrained state.
	Model *snn.Model
	// Baseline is the fault-free snapshot restored before every die.
	Baseline *snn.NetworkState
	Arr      *systolic.Array
	// Train and Test are shared read-only across lanes.
	Train, Test []snn.Sample
	// BuildModel optionally supplies structurally identical fresh models
	// so additional lanes can evaluate dies concurrently; when nil the
	// campaign runs single-lane on Model/Arr.
	BuildModel func() (*snn.Model, error)
	// Fingerprint adds caller-level provenance (baseline training
	// epochs, dataset sizes, ...) to the checkpoint metadata, so shards
	// whose results depend on configuration the YieldConfig cannot see
	// still refuse to merge when it differs.
	Fingerprint map[string]string
}

// yieldWorker processes dies on a private model+array pair.
type yieldWorker struct {
	deps  YieldDeps
	cfg   YieldConfig
	model *snn.Model
	arr   *systolic.Array
	eval  []snn.Sample
}

// yieldCampaign implements campaign.Campaign and campaign.MetaProvider.
type yieldCampaign struct {
	deps YieldDeps
	cfg  YieldConfig
}

// YieldCampaign decomposes a yield study into a campaign: one trial per
// simulated die. Run it with campaign.Run (shard/checkpoint as needed)
// and fold the results with YieldFromResults.
func YieldCampaign(deps YieldDeps, cfg YieldConfig) (campaign.Campaign, error) {
	if err := validateYield(cfg); err != nil {
		return nil, err
	}
	if deps.Model == nil || deps.Baseline == nil || deps.Arr == nil {
		return nil, fmt.Errorf("core: yield campaign needs model, baseline and array")
	}
	return &yieldCampaign{deps: deps, cfg: cfg}, nil
}

// Name implements campaign.Campaign.
func (c *yieldCampaign) Name() string { return "yield" }

// Meta implements campaign.MetaProvider.
func (c *yieldCampaign) Meta() map[string]string {
	acfg := c.deps.Arr.Config()
	return yieldMeta(acfg.Rows, acfg.Cols, c.cfg, c.deps.Fingerprint)
}

// yieldMeta fingerprints every result-affecting knob of a yield
// campaign (population, salvage policy and its retraining budget,
// evaluation size) plus caller-level extras, so shards run with
// different settings refuse to merge; chips and threshold additionally
// let merge rebuild the report without the model.
func yieldMeta(rows, cols int, cfg YieldConfig, extra map[string]string) map[string]string {
	m := map[string]string{
		"chips":      strconv.Itoa(cfg.Chips),
		"threshold":  strconv.FormatFloat(cfg.Threshold, 'g', -1, 64),
		"array":      fmt.Sprintf("%dx%d", rows, cols),
		"mean":       strconv.FormatFloat(cfg.Defects.MeanFaulty, 'g', -1, 64),
		"alpha":      strconv.FormatFloat(cfg.Defects.Alpha, 'g', -1, 64),
		"clustered":  strconv.FormatBool(cfg.Clustered),
		"method":     cfg.Mitigation.Method.String(),
		"mit-epochs": strconv.Itoa(cfg.Mitigation.Epochs),
		"mit-lr":     strconv.FormatFloat(cfg.Mitigation.LR, 'g', -1, 64),
		"mit-batch":  strconv.Itoa(cfg.Mitigation.BatchSize),
		"eval":       strconv.Itoa(cfg.EvalSamples),
		"seed":       strconv.FormatInt(cfg.Seed, 10),
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}

// Trials implements campaign.Campaign.
func (c *yieldCampaign) Trials() ([]campaign.Trial, error) {
	acfg := c.deps.Arr.Config()
	return YieldTrials(acfg.Rows, acfg.Cols, c.cfg)
}

// NewWorker implements campaign.Campaign. Lane 0 reuses the caller's
// model and array; further lanes build private replicas.
func (c *yieldCampaign) NewWorker(lane int) (campaign.Worker, error) {
	w := &yieldWorker{deps: c.deps, cfg: c.cfg}
	w.eval = c.deps.Test
	if c.cfg.EvalSamples > 0 && c.cfg.EvalSamples < len(c.deps.Test) {
		w.eval = c.deps.Test[:c.cfg.EvalSamples]
	}
	if lane == 0 {
		w.model, w.arr = c.deps.Model, c.deps.Arr
		return w, nil
	}
	if c.deps.BuildModel == nil {
		return nil, fmt.Errorf("core: yield campaign is single-lane (no BuildModel); run it on a serial runner")
	}
	m, err := c.deps.BuildModel()
	if err != nil {
		return nil, err
	}
	acfg := c.deps.Arr.Config()
	arr, err := systolic.New(acfg)
	if err != nil {
		return nil, err
	}
	w.model, w.arr = m, arr
	return w, nil
}

// lazyYieldCampaign defers resource construction to first worker use.
type lazyYieldCampaign struct {
	rows, cols  int
	cfg         YieldConfig
	fingerprint map[string]string
	build       func() (YieldDeps, error)

	once  sync.Once
	inner *yieldCampaign
	err   error
}

// LazyYieldCampaign is YieldCampaign with the expensive resources
// (trained baseline, arrays) built by the callback on first NewWorker
// call instead of up front: planning trials, and resuming a checkpoint
// that already covers every trial, never pay for baseline training.
// rows/cols give the array extent (needed for trial enumeration).
func LazyYieldCampaign(rows, cols int, cfg YieldConfig, fingerprint map[string]string,
	build func() (YieldDeps, error)) (campaign.Campaign, error) {
	if err := validateYield(cfg); err != nil {
		return nil, err
	}
	return &lazyYieldCampaign{rows: rows, cols: cols, cfg: cfg, fingerprint: fingerprint, build: build}, nil
}

// Name implements campaign.Campaign.
func (c *lazyYieldCampaign) Name() string { return "yield" }

// Meta implements campaign.MetaProvider (identical to the eager
// campaign's, so eager and lazy shard files merge).
func (c *lazyYieldCampaign) Meta() map[string]string {
	return yieldMeta(c.rows, c.cols, c.cfg, c.fingerprint)
}

// Trials implements campaign.Campaign without touching the resources.
func (c *lazyYieldCampaign) Trials() ([]campaign.Trial, error) {
	return YieldTrials(c.rows, c.cols, c.cfg)
}

// NewWorker implements campaign.Campaign, building the resources once.
// Runner lanes create workers sequentially per lane, but distinct lanes
// may race here, so the first build is serialized by the campaign.
func (c *lazyYieldCampaign) NewWorker(lane int) (campaign.Worker, error) {
	c.once.Do(func() {
		deps, err := c.build()
		if err != nil {
			c.err = err
			return
		}
		deps.Fingerprint = c.fingerprint
		acfg := deps.Arr.Config()
		if acfg.Rows != c.rows || acfg.Cols != c.cols {
			c.err = fmt.Errorf("core: lazy yield campaign built a %dx%d array, planned %dx%d",
				acfg.Rows, acfg.Cols, c.rows, c.cols)
			return
		}
		c.inner = &yieldCampaign{deps: deps, cfg: c.cfg}
	})
	if c.err != nil {
		return nil, c.err
	}
	return c.inner.NewWorker(lane)
}

// RunTrial implements campaign.Worker: simulate one die.
func (w *yieldWorker) RunTrial(t campaign.Trial) (campaign.Result, error) {
	n, err := strconv.Atoi(t.Tags["faulty"])
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: die %d has bad faulty tag %q", t.ID, t.Tags["faulty"])
	}
	res := campaign.Result{TrialID: t.ID, Key: t.Key}
	rows, cols := w.arr.Config().Rows, w.arr.Config().Cols
	fm, err := w.dieFaultMap(rows, cols, n, rand.New(rand.NewSource(t.Seed)))
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: die %d: %w", t.ID, err)
	}
	faulty := fm.NumFaultyPEs()
	if faulty == 0 {
		res.Metrics = map[string]float64{"faulty": 0}
		return res, nil
	}

	// Discard-based flow: raw faulty accuracy.
	w.model.Net.Undeploy()
	if err := w.model.Net.LoadState(w.deps.Baseline); err != nil {
		return campaign.Result{}, err
	}
	rawAcc, err := EvaluateFaultyOpts(w.model, w.arr, fm, w.eval, EvalOptions{
		BatchSize: 32, Engine: w.cfg.Mitigation.Engine,
	})
	if err != nil {
		return campaign.Result{}, err
	}

	// Salvage flow: per-die mitigation on a die-seeded generator.
	w.model.Net.Undeploy()
	if err := w.model.Net.LoadState(w.deps.Baseline); err != nil {
		return campaign.Result{}, err
	}
	mcfg := w.cfg.Mitigation
	mcfg.Rng = rand.New(rand.NewSource(w.cfg.Seed + int64(t.ID)))
	mrep, err := Mitigate(w.model, w.arr, fm, w.deps.Train, w.eval, mcfg)
	if err != nil {
		return campaign.Result{}, err
	}
	res.Metrics = map[string]float64{
		"faulty": float64(faulty),
		"raw":    rawAcc,
		"mit":    mrep.Accuracy,
		"pruned": mrep.PrunedFraction,
	}
	return res, nil
}

// dieFaultMap draws one die's fault map from its trial seed.
func (w *yieldWorker) dieFaultMap(rows, cols, n int, rng *rand.Rand) (*faults.Map, error) {
	if n == 0 {
		return faults.NewMap(rows, cols), nil
	}
	if w.cfg.Clustered {
		clusters := 1 + n/8
		return faults.GenerateClustered(rows, cols, faults.ClusterSpec{
			Clusters: clusters, MeanSize: (n + clusters - 1) / clusters,
			Radius: 1.5, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
		}, rng)
	}
	return faults.Generate(rows, cols, faults.GenSpec{
		NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
	}, rng)
}

// YieldFromResults folds merged campaign results into a YieldReport.
// Counts accumulate in ascending trial-ID order (integers, so the report
// is exactly reproducible however the dies were sharded). The result set
// must cover every die.
func YieldFromResults(results []campaign.Result, chips int, threshold float64) (*YieldReport, error) {
	if missing := campaign.Missing(results, chips); len(missing) > 0 {
		return nil, fmt.Errorf("core: yield results incomplete: %d of %d dies missing (first %d)",
			len(missing), chips, missing[0])
	}
	if len(results) != chips {
		return nil, fmt.Errorf("core: %d results for %d dies", len(results), chips)
	}
	rep := &YieldReport{Chips: chips}
	totalFaulty := 0
	for _, r := range results {
		n := int(r.Metrics["faulty"])
		totalFaulty += n
		if n == 0 {
			rep.FaultFree++
			rep.ShippableNoMitigation++
			rep.ShippableMitigated++
			continue
		}
		if r.Metrics["raw"] >= threshold {
			rep.ShippableNoMitigation++
		}
		if r.Metrics["mit"] >= threshold {
			rep.ShippableMitigated++
		}
	}
	rep.MeanFaulty = float64(totalFaulty) / float64(chips)
	return rep, nil
}

// SyntheticYieldFingerprint is the provenance metadata for the shared
// synthetic-MNIST yield baseline: the knobs SyntheticYieldBuild bakes
// in that YieldConfig cannot see. cmd/yield and cmd/campaign both
// record it, so their shard files and cluster workers interoperate iff
// the baseline setup matches.
func SyntheticYieldFingerprint(baseEpochs int) map[string]string {
	return map[string]string{
		"base-epochs": strconv.Itoa(baseEpochs),
		"baseline":    "synthetic-mnist-320/128",
	}
}

// SyntheticYieldBuild returns the canonical baseline-build closure for
// yield studies on the synthetic MNIST stand-in: dataset, reduced model
// spec, baseline training, and the systolic array. It exists in one
// place because cmd/yield and cmd/campaign must construct bit-identical
// baselines for the SyntheticYieldFingerprint contract to hold — a
// drift between two hand-copied closures would pass fingerprint
// verification and only surface as a mid-campaign result conflict.
// Progress lines go to log (nil silences).
func SyntheticYieldBuild(seed int64, baseEpochs, arrayN int, threshold float64, log io.Writer) func() (YieldDeps, error) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	return func() (YieldDeps, error) {
		ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 320, Test: 128, T: 4, Seed: seed})
		if err != nil {
			return YieldDeps{}, err
		}
		spec := snn.MNISTSpec()
		spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
		buildModel := func() (*snn.Model, error) {
			return snn.Build(spec, rand.New(rand.NewSource(seed)))
		}
		model, err := buildModel()
		if err != nil {
			return YieldDeps{}, err
		}
		logf("training baseline...\n")
		baseAcc, err := TrainBaseline(model, ds.Train, ds.Test, BaselineConfig{
			Epochs: baseEpochs, LR: 0.02, Rng: rand.New(rand.NewSource(seed + 1)),
		})
		if err != nil {
			return YieldDeps{}, err
		}
		logf("baseline accuracy %.3f; shipping threshold %.2f\n", baseAcc, threshold)
		arr, err := systolic.New(systolic.Config{Rows: arrayN, Cols: arrayN, Format: fixed.Q16x16, Saturate: true})
		if err != nil {
			return YieldDeps{}, err
		}
		// BuildModel lets the campaign evaluate dies on every engine
		// lane concurrently instead of one at a time.
		return YieldDeps{
			Model: model, Baseline: model.Net.State(), Arr: arr,
			Train: ds.Train, Test: ds.Test, BuildModel: buildModel,
		}, nil
	}
}

// YieldStudy simulates cfg.Chips manufactured dies of the given array
// size, evaluates each unmitigated and after the salvage policy, and
// reports shippable counts. The model is restored from baseline before
// every die. It is the single-process convenience wrapper over
// YieldCampaign + campaign.Run + YieldFromResults; use those directly
// for sharding, checkpointing, or parallel lanes (BuildModel).
func YieldStudy(model *snn.Model, baseline *snn.NetworkState, arr *systolic.Array,
	train, test []snn.Sample, cfg YieldConfig) (*YieldReport, error) {
	c, err := YieldCampaign(YieldDeps{
		Model: model, Baseline: baseline, Arr: arr, Train: train, Test: test,
	}, cfg)
	if err != nil {
		return nil, err
	}
	// Single-lane: the caller handed us one mutable model, so dies run
	// sequentially on it exactly as the pre-campaign implementation did.
	rr, err := campaign.Run(c, campaign.Options{
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		return nil, err
	}
	return YieldFromResults(rr.Results, cfg.Chips, cfg.Threshold)
}
