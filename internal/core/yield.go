package core

import (
	"fmt"
	"math/rand"

	"falvolt/internal/faults"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// Yield analysis.
//
// The paper's §I motivation: post-fabrication testing discards chips with
// stuck-at faults, and at realistic defect densities that destroys yield;
// FalVolt instead salvages faulty chips with a one-time, per-chip
// retraining keyed to the chip's fault map. This file quantifies that
// trade: sample a population of manufactured chips from a defect model,
// apply a mitigation policy, and count the chips whose post-mitigation
// accuracy clears a shipping threshold.

// YieldConfig controls a yield study.
type YieldConfig struct {
	// Chips is the number of manufactured dies to simulate.
	Chips int
	// Defects models the per-die faulty-PE count (clustered defects).
	Defects faults.DefectModel
	// Clustered draws each die's fault map with spatial clustering
	// instead of uniformly.
	Clustered bool
	// Threshold is the minimum accuracy for a die to ship.
	Threshold float64
	// Mitigation selects the salvage policy applied to faulty dies.
	// Epochs/LR/BatchSize are passed through to Mitigate.
	Mitigation Config
	// EvalSamples caps evaluation cost per die (0 = all test samples).
	EvalSamples int
	// Rng drives the population sampling. When nil a generator seeded
	// with Seed+1 is constructed — reproducible from the config alone.
	Rng *rand.Rand
	// Seed offsets the default Rng and the per-die mitigation seeds.
	Seed int64
}

// YieldReport summarises a yield study.
type YieldReport struct {
	Chips int
	// FaultFree is the number of dies with zero faulty PEs.
	FaultFree int
	// ShippableNoMitigation counts dies clearing the threshold with
	// faults left unmitigated (bypass off) — the discard-based flow.
	ShippableNoMitigation int
	// ShippableMitigated counts dies clearing the threshold after the
	// salvage policy.
	ShippableMitigated int
	// MeanFaulty is the mean number of faulty PEs per die.
	MeanFaulty float64
}

// YieldNoMitigation returns the yield fraction of the discard-based flow.
func (r YieldReport) YieldNoMitigation() float64 {
	if r.Chips == 0 {
		return 0
	}
	return float64(r.ShippableNoMitigation) / float64(r.Chips)
}

// YieldMitigated returns the yield fraction after salvage.
func (r YieldReport) YieldMitigated() float64 {
	if r.Chips == 0 {
		return 0
	}
	return float64(r.ShippableMitigated) / float64(r.Chips)
}

// String implements fmt.Stringer.
func (r YieldReport) String() string {
	return fmt.Sprintf("yield: %d dies, mean %.1f faulty PEs; no-mitigation %.1f%% -> mitigated %.1f%%",
		r.Chips, r.MeanFaulty, 100*r.YieldNoMitigation(), 100*r.YieldMitigated())
}

// YieldStudy simulates cfg.Chips manufactured dies of the given array
// size, evaluates each unmitigated and after the salvage policy, and
// reports shippable counts. The model is restored from baseline before
// every die, so dies are independent.
func YieldStudy(model *snn.Model, baseline *snn.NetworkState, arr *systolic.Array,
	train, test []snn.Sample, cfg YieldConfig) (*YieldReport, error) {
	if cfg.Chips <= 0 {
		return nil, fmt.Errorf("core: yield study needs chips > 0")
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v outside (0,1]", cfg.Threshold)
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(cfg.Seed + 1))
	}
	evalSet := test
	if cfg.EvalSamples > 0 && cfg.EvalSamples < len(test) {
		evalSet = test[:cfg.EvalSamples]
	}
	rows, cols := arr.Config().Rows, arr.Config().Cols
	rep := &YieldReport{Chips: cfg.Chips}
	var totalFaulty int
	for die := 0; die < cfg.Chips; die++ {
		n := cfg.Defects.SampleFaultyCount(cfg.Rng)
		if n > rows*cols {
			n = rows * cols
		}
		totalFaulty += n
		var fm *faults.Map
		var err error
		if n == 0 {
			fm = faults.NewMap(rows, cols)
		} else if cfg.Clustered {
			clusters := 1 + n/8
			fm, err = faults.GenerateClustered(rows, cols, faults.ClusterSpec{
				Clusters: clusters, MeanSize: (n + clusters - 1) / clusters,
				Radius: 1.5, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
			}, cfg.Rng)
		} else {
			fm, err = faults.Generate(rows, cols, faults.GenSpec{
				NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
			}, cfg.Rng)
		}
		if err != nil {
			return nil, fmt.Errorf("core: die %d: %w", die, err)
		}
		if fm.NumFaultyPEs() == 0 {
			rep.FaultFree++
			rep.ShippableNoMitigation++
			rep.ShippableMitigated++
			continue
		}

		// Discard-based flow: raw faulty accuracy.
		model.Net.Undeploy()
		if err := model.Net.LoadState(baseline); err != nil {
			return nil, err
		}
		rawAcc, err := EvaluateFaultyOpts(model, arr, fm, evalSet, EvalOptions{
			BatchSize: 32, Engine: cfg.Mitigation.Engine,
		})
		if err != nil {
			return nil, err
		}
		if rawAcc >= cfg.Threshold {
			rep.ShippableNoMitigation++
		}

		// Salvage flow.
		model.Net.Undeploy()
		if err := model.Net.LoadState(baseline); err != nil {
			return nil, err
		}
		mcfg := cfg.Mitigation
		mcfg.Silent = true
		if mcfg.Rng == nil {
			mcfg.Rng = rand.New(rand.NewSource(cfg.Seed + int64(die)))
		}
		mrep, err := Mitigate(model, arr, fm, train, evalSet, mcfg)
		if err != nil {
			return nil, err
		}
		if mrep.Accuracy >= cfg.Threshold {
			rep.ShippableMitigated++
		}
	}
	rep.MeanFaulty = float64(totalFaulty) / float64(cfg.Chips)
	return rep, nil
}
