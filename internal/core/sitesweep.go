package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// The "sitesweep" campaign kind: SpikeFI-style exhaustive single-site
// vulnerability sweep. One trial per (PE row, PE column, bit, polarity)
// stuck-at site from faults.EnumerateSites, each injecting exactly that
// site and measuring output corruption against a clean twin over a
// short fixed spiking workload — the model-free map of which physical
// sites matter. The workload (weights, spikes) is derived from the
// campaign seed and identical across trials, so cells differ only in
// the injected site and the sweep reproduces bit-identically on any
// shard split or worker count.

// sitesweepSites resolves the (possibly sampled) site universe of a
// sweep — the single definition trial planning and workers share.
func sitesweepSites(d spec.SiteSweepSpec, seed int64) ([]faults.Site, error) {
	var pols []faults.Polarity
	switch d.Pols {
	case "sa0":
		pols = []faults.Polarity{faults.StuckAt0}
	case "sa1":
		pols = []faults.Polarity{faults.StuckAt1}
	}
	sites, err := faults.EnumerateSites(d.Array, d.Array, d.Bits, pols)
	if err != nil {
		return nil, err
	}
	if d.Sample > 0 && d.Sample < len(sites) {
		return faults.SampleSites(sites, d.Sample, seed+3)
	}
	return sites, nil
}

// SiteSweepTrials enumerates the sweep deterministically: sites in
// EnumerateSites order (or the seed-addressed sample), IDs dense. The
// Key groups by (bit, polarity) — the axes the rendered report
// aggregates over — while Tags pin the exact site.
func SiteSweepTrials(d spec.SiteSweepSpec, seed int64) ([]campaign.Trial, error) {
	sites, err := sitesweepSites(d, seed)
	if err != nil {
		return nil, err
	}
	trials := make([]campaign.Trial, len(sites))
	for i, s := range sites {
		trials[i] = campaign.Trial{
			ID:   i,
			Key:  fmt.Sprintf("bit=%02d|pol=%s", s.Bit, s.Pol),
			Seed: seed + 7919*int64(i),
			Tags: map[string]string{
				"row": strconv.Itoa(s.Row),
				"col": strconv.Itoa(s.Col),
				"bit": strconv.Itoa(int(s.Bit)),
				"pol": s.Pol.String(),
			},
		}
	}
	return trials, nil
}

// siteSweepWorker is one lane's private clean/faulty array pair plus
// the shared deterministic workload.
type siteSweepWorker struct {
	cfg    spec.SiteSweepSpec
	clean  *systolic.Array
	faulty *systolic.Array
	wm     *systolic.Matrix
	x      *tensor.Tensor
	yClean *tensor.Tensor
}

func newSiteSweepWorker(d spec.SiteSweepSpec, seed int64) (campaign.Worker, error) {
	side := d.Array
	mk := func() (*systolic.Array, error) {
		return systolic.New(systolic.Config{
			Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true,
			Engine: tensor.Serial(),
		})
	}
	clean, err := mk()
	if err != nil {
		return nil, err
	}
	faulty, err := mk()
	if err != nil {
		return nil, err
	}
	// Ragged tiles, as in the faultmodel campaign: K > Rows exercises
	// multi-tile accumulation, M > Cols exercises column reuse.
	k := side + side/2 + 1
	m := side + side/3 + 2
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	wm := systolic.QuantizeMatrix(w, fixed.Q16x16)
	x := tensor.New(d.Batch, k)
	xrng := rand.New(rand.NewSource(seed + 1))
	for i := range x.Data {
		if xrng.Float64() < d.Density {
			x.Data[i] = 1
		}
	}
	sw := &siteSweepWorker{cfg: d, clean: clean, faulty: faulty, wm: wm, x: x}
	sw.yClean = clean.Forward(x, wm, true)
	return sw, nil
}

// RunTrial injects the trial's single site and steps the faulty array
// through the inference horizon, comparing against the clean reference.
func (sw *siteSweepWorker) RunTrial(t campaign.Trial) (campaign.Result, error) {
	row, err1 := strconv.Atoi(t.Tags["row"])
	col, err2 := strconv.Atoi(t.Tags["col"])
	bit, err3 := strconv.Atoi(t.Tags["bit"])
	if err1 != nil || err2 != nil || err3 != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d has bad site tags %v", t.ID, t.Tags)
	}
	pol := faults.StuckAt0
	if t.Tags["pol"] == "sa1" {
		pol = faults.StuckAt1
	}
	fm, err := faults.SiteMap(sw.cfg.Array, sw.cfg.Array, faults.Site{
		Row: row, Col: col, Bit: uint(bit), Pol: pol,
	})
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %w", t.ID, err)
	}
	sw.faulty.ClearFaults()
	if err := sw.faulty.InjectFaults(fm); err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %w", t.ID, err)
	}
	var corrupt, total int
	var sumAbs, maxAbs float64
	for step := 0; step < sw.cfg.Timesteps; step++ {
		sw.faulty.SetTimestep(step)
		yf := sw.faulty.Forward(sw.x, sw.wm, true)
		for i := range yf.Data {
			d := math.Abs(float64(yf.Data[i]) - float64(sw.yClean.Data[i]))
			total++
			if d != 0 {
				corrupt++
				sumAbs += d
				if d > maxAbs {
					maxAbs = d
				}
			}
		}
	}
	sw.faulty.ClearFaults()
	return campaign.Result{
		TrialID: t.ID,
		Key:     t.Key,
		Metrics: map[string]float64{
			"corrupt": float64(corrupt) / float64(total),
			"mae":     sumAbs / float64(total),
			"max":     maxAbs,
		},
	}, nil
}

// SiteSweepCampaign builds the runnable campaign for a siteSweep
// section.
func SiteSweepCampaign(cfg spec.SiteSweepSpec, seed int64) (campaign.Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Defaulted()
	trials, err := SiteSweepTrials(d, seed)
	if err != nil {
		return nil, err
	}
	meta := map[string]string{
		"array":  strconv.Itoa(d.Array),
		"pols":   d.Pols,
		"sample": strconv.Itoa(d.Sample),
	}
	return campaign.NewWithMeta("sitesweep", meta, trials, func(lane int) (campaign.Worker, error) {
		return newSiteSweepWorker(d, seed)
	}), nil
}

// siteSweepPoint is one (bit, polarity) row of the rendered report.
type siteSweepPoint struct {
	Bit     int     `json:"bit"`
	Pol     string  `json:"pol"`
	Corrupt float64 `json:"corrupt"`
	MAE     float64 `json:"mae"`
	Max     float64 `json:"max"`
}

// siteSweepReport is the merge-rendered JSON artifact: per-(bit, pol)
// means over all swept PEs.
type siteSweepReport struct {
	Array  int              `json:"array"`
	Sites  int              `json:"sites"`
	Points []siteSweepPoint `json:"points"`
}

func siteSweepJSON(d spec.SiteSweepSpec, results []campaign.Result) (*siteSweepReport, error) {
	corrupt := campaign.GroupMean(results, "corrupt")
	mae := campaign.GroupMean(results, "mae")
	maxm := campaign.GroupMean(results, "max")
	rep := &siteSweepReport{Array: d.Array, Sites: len(results)}
	keys := make([]string, 0, len(corrupt))
	for k := range corrupt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var bit int
		var pol string
		if _, err := fmt.Sscanf(key, "bit=%d|pol=%s", &bit, &pol); err != nil {
			return nil, fmt.Errorf("core: bad sitesweep key %q", key)
		}
		rep.Points = append(rep.Points, siteSweepPoint{
			Bit:     bit,
			Pol:     pol,
			Corrupt: corrupt[key],
			MAE:     mae[key],
			Max:     maxm[key],
		})
	}
	return rep, nil
}

func renderSiteSweep(w io.Writer, d spec.SiteSweepSpec, results []campaign.Result) error {
	rep, err := siteSweepJSON(d, results)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Single-site sweep: array=%dx%d sites=%d\n", rep.Array, rep.Array, rep.Sites)
	fmt.Fprintf(w, "%-6s %-5s %-12s %-12s %-12s\n", "bit", "pol", "corrupt", "mae", "max")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-6d %-5s %-12.4f %-12.4f %-12.4f\n", p.Bit, p.Pol, p.Corrupt, p.MAE, p.Max)
	}
	return nil
}

func init() {
	spec.Register("sitesweep", func(s *spec.Spec, opt spec.BuildOpts) (*spec.Built, error) {
		if s.SiteSweep == nil {
			return nil, fmt.Errorf("core: spec kind %q needs a siteSweep section", s.Kind)
		}
		d := s.SiteSweep.Defaulted()
		cam, err := SiteSweepCampaign(*s.SiteSweep, s.EffectiveSeed())
		if err != nil {
			return nil, err
		}
		return &spec.Built{
			Campaign: cam,
			Render: func(w io.Writer, results []campaign.Result) error {
				return renderSiteSweep(w, d, results)
			},
			JSON: func(results []campaign.Result) (any, error) {
				return siteSweepJSON(d, results)
			},
		}, nil
	})
}
