package core

import (
	"fmt"
	"io"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/mitigation"
	"falvolt/internal/spec"
)

// Spec-registry integration: "yield" is constructible from a declarative
// spec.Spec, so cmd/yield, cmd/campaign and cluster workers all build
// bit-identical yield campaigns from the same canonical bytes — the
// hand-copied flag plumbing that once had to agree across tools is gone.

// ParseMethod parses a mitigation/salvage method name: "fap", "fapit"
// or "falvolt", case-insensitively (so both the flag spellings and the
// Method.String() forms parse).
func ParseMethod(name string) (Method, error) {
	return mitigation.ParseMethod(name)
}

// YieldConfigFromSpec resolves a yield spec section into the concrete
// study configuration; zero fields take their documented defaults
// (YieldSpec.Defaulted — the single definition the cmd flag defaults
// also come from). The +2 seed offset keeps the die population aligned
// with the historical cmd/yield enumeration.
func YieldConfigFromSpec(s *spec.Spec) (YieldConfig, error) {
	if s.Yield == nil {
		return YieldConfig{}, fmt.Errorf("core: spec kind %q needs a yield section", s.Kind)
	}
	y := s.Yield.Defaulted()
	m, err := ParseMethod(y.Method)
	if err != nil {
		return YieldConfig{}, err
	}
	return YieldConfig{
		Chips:     y.Chips,
		Defects:   faults.DefectModel{MeanFaulty: y.MeanFaulty, Alpha: y.Alpha},
		Clustered: y.Clustered,
		Threshold: y.Threshold,
		Mitigation: Config{
			Method: m, Epochs: y.MitEpochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		},
		EvalSamples: y.Eval,
		Seed:        s.EffectiveSeed() + 2,
	}, nil
}

func init() {
	spec.Register("yield", func(s *spec.Spec, opt spec.BuildOpts) (*spec.Built, error) {
		cfg, err := YieldConfigFromSpec(s)
		if err != nil {
			return nil, err
		}
		y := s.Yield.Defaulted()
		arrayN, baseEp := y.Array, y.BaseEpochs
		cam, err := LazyYieldCampaign(arrayN, arrayN, cfg,
			SyntheticYieldFingerprint(baseEp),
			SyntheticYieldBuild(s.EffectiveSeed(), baseEp, arrayN, cfg.Threshold, opt.Log))
		if err != nil {
			return nil, err
		}
		report := func(results []campaign.Result) (*YieldReport, error) {
			return YieldFromResults(results, cfg.Chips, cfg.Threshold)
		}
		return &spec.Built{
			Campaign: cam,
			Render: func(w io.Writer, results []campaign.Result) error {
				rep, err := report(results)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, rep)
				return err
			},
			JSON: func(results []campaign.Result) (any, error) {
				return report(results)
			},
		}, nil
	})
}
