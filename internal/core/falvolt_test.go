package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

// testHarness bundles a small trained model, dataset and array for
// mitigation tests. Sizes are kept small so the full pipeline (baseline
// training + mitigation retraining + faulty-array evaluation) stays fast.
type testHarness struct {
	model    *snn.Model
	baseline *snn.NetworkState
	arr      *systolic.Array
	train    []snn.Sample
	test     []snn.Sample
	baseAcc  float64
}

var (
	sharedHarness *testHarness
	harnessErr    error
	harnessOnce   sync.Once
)

// newHarness builds (once) a small trained model shared by all mitigation
// tests; each test restores the baseline state before mutating it.
func newHarness(t *testing.T) *testHarness {
	t.Helper()
	harnessOnce.Do(func() {
		rng := rand.New(rand.NewSource(100))
		spec := snn.MNISTSpec()
		spec.T = 4
		spec.EncoderC = 4
		spec.BlockC = []int{8, 8}
		spec.FCHidden = 32
		model, err := snn.Build(spec, rng)
		if err != nil {
			harnessErr = err
			return
		}
		ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 160, Test: 80, T: spec.T, Seed: 5})
		if err != nil {
			harnessErr = err
			return
		}
		acc, err := TrainBaseline(model, ds.Train, ds.Test, BaselineConfig{Epochs: 8, LR: 0.02, Rng: rng})
		if err != nil {
			harnessErr = err
			return
		}
		arr, err := systolic.New(systolic.Config{Rows: 16, Cols: 16, Format: fixed.Q16x16, Saturate: true})
		if err != nil {
			harnessErr = err
			return
		}
		sharedHarness = &testHarness{
			model:    model,
			baseline: model.Net.State(),
			arr:      arr,
			train:    ds.Train,
			test:     ds.Test,
			baseAcc:  acc,
		}
	})
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	h := sharedHarness
	if h.baseAcc < 0.6 {
		t.Fatalf("baseline training too weak for mitigation tests: %.2f", h.baseAcc)
	}
	// Restore pristine baseline for this test.
	h.model.Net.Undeploy()
	h.arr.ClearFaults()
	if err := h.model.Net.LoadState(h.baseline); err != nil {
		t.Fatal(err)
	}
	return h
}

func worstCaseFaults(t *testing.T, rows, cols, n int, seed int64) *faults.Map {
	t.Helper()
	fm, err := faults.Generate(rows, cols, faults.GenSpec{
		NumFaulty: n, BitMode: faults.FixedBit, Bit: 30, Pol: faults.StuckAt1,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestEvaluateFaultyCorruptsAccuracy(t *testing.T) {
	h := newHarness(t)
	fm := worstCaseFaults(t, 16, 16, 64, 1) // 25% of PEs, high bit sa1

	faultyAcc, err := EvaluateFaulty(h.model, h.arr, fm, h.test, false, 32)
	if err != nil {
		t.Fatal(err)
	}
	if faultyAcc >= h.baseAcc-0.1 {
		t.Errorf("25%% MSB sa1 faults barely moved accuracy: baseline %.2f, faulty %.2f", h.baseAcc, faultyAcc)
	}

	bypassAcc, err := EvaluateFaulty(h.model, h.arr, fm, h.test, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	if bypassAcc < faultyAcc-0.05 {
		t.Errorf("bypass should not be clearly worse than corruption: bypass %.2f, faulty %.2f", bypassAcc, faultyAcc)
	}
}

func TestMitigationOrdering(t *testing.T) {
	h := newHarness(t)
	fm := worstCaseFaults(t, 16, 16, 77, 2) // ~30% of PEs

	run := func(m Method, epochs int) *Report {
		if err := h.model.Net.LoadState(h.baseline); err != nil {
			t.Fatal(err)
		}
		h.model.Net.Undeploy()
		rep, err := Mitigate(h.model, h.arr, fm, h.train, h.test, Config{
			Method: m, Epochs: epochs, BatchSize: 16, LR: 0.01, ClipNorm: 5,
			Rng: rand.New(rand.NewSource(3)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	fap := run(FaP, 0)
	fapit := run(FaPIT, 3)
	falvolt := run(FalVolt, 3)

	t.Logf("baseline %.3f | FaP %.3f | FaPIT %.3f | FalVolt %.3f",
		h.baseAcc, fap.Accuracy, fapit.Accuracy, falvolt.Accuracy)

	if fap.RetrainDuration != 0 {
		t.Error("FaP must not retrain")
	}
	if fapit.Accuracy < fap.Accuracy-0.05 {
		t.Errorf("retraining (FaPIT %.2f) should not be clearly worse than pruning alone (FaP %.2f)", fapit.Accuracy, fap.Accuracy)
	}
	if falvolt.Accuracy < fap.Accuracy-0.05 {
		t.Errorf("FalVolt %.2f should not be clearly worse than FaP %.2f", falvolt.Accuracy, fap.Accuracy)
	}
	if falvolt.PrunedFraction <= 0 {
		t.Error("expected a non-trivial pruned fraction at 30% fault rate")
	}
	if len(falvolt.Vths) != len(h.model.SpikingNames) {
		t.Errorf("Vths per spiking layer: got %d, want %d", len(falvolt.Vths), len(h.model.SpikingNames))
	}
	// FalVolt must actually have moved thresholds away from the fixed 1.0.
	moved := false
	for _, v := range falvolt.Vths {
		if v != 1.0 {
			moved = true
		}
	}
	if !moved {
		t.Error("FalVolt did not optimize any threshold voltage")
	}
	for _, v := range fapit.Vths {
		if v != 1.0 {
			t.Errorf("FaPIT must keep thresholds fixed at 1.0, got %v", fapit.Vths)
		}
	}
}

func TestMitigateFixedVthSweep(t *testing.T) {
	h := newHarness(t)
	fm := worstCaseFaults(t, 16, 16, 50, 4)
	if err := h.model.Net.LoadState(h.baseline); err != nil {
		t.Fatal(err)
	}
	rep, err := Mitigate(h.model, h.arr, fm, h.train, h.test, Config{
		Method: FaPIT, Epochs: 2, BatchSize: 16, LR: 0.01, FixedVth: 0.55,
		Rng: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Vths {
		if math.Abs(v-0.55) > 1e-6 {
			t.Errorf("fixed-threshold sweep must pin Vth at 0.55, got %v", rep.Vths)
		}
	}
}

func TestMitigateTracksCurve(t *testing.T) {
	h := newHarness(t)
	fm := worstCaseFaults(t, 16, 16, 30, 6)
	if err := h.model.Net.LoadState(h.baseline); err != nil {
		t.Fatal(err)
	}
	rep, err := Mitigate(h.model, h.arr, fm, h.train, h.test, Config{
		Method: FalVolt, Epochs: 3, BatchSize: 16, LR: 0.01,
		TrackCurve: true, CurveEvalSize: 40,
		Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(rep.Curve))
	}
	for i, p := range rep.Curve {
		if p.Epoch != i {
			t.Errorf("curve point %d has epoch %d", i, p.Epoch)
		}
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("curve accuracy %v out of range", p.Accuracy)
		}
	}
}

func TestStateRoundTripThroughMitigation(t *testing.T) {
	h := newHarness(t)
	before := snn.Evaluate(h.model.Net, h.test, 32)
	fm := worstCaseFaults(t, 16, 16, 60, 8)
	if _, err := Mitigate(h.model, h.arr, fm, h.train, h.test, Config{
		Method: FaP, Rng: rand.New(rand.NewSource(9)),
	}); err != nil {
		t.Fatal(err)
	}
	// Restore and verify the baseline accuracy returns exactly.
	h.model.Net.Undeploy()
	if err := h.model.Net.LoadState(h.baseline); err != nil {
		t.Fatal(err)
	}
	after := snn.Evaluate(h.model.Net, h.test, 32)
	if before != after {
		t.Errorf("state restore changed accuracy: %.4f -> %.4f", before, after)
	}
}
