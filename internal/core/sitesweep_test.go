package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

// sitesweepTestConfig: a 4x4 array with two bits and both polarities =
// 4*4*2*2 = 64 sites, small enough to run exhaustively in the shard
// test.
func sitesweepTestConfig() spec.SiteSweepSpec {
	return spec.SiteSweepSpec{
		Array:     4,
		Bits:      []uint{0, 31},
		Pols:      "both",
		Batch:     4,
		Timesteps: 2,
		Density:   0.3,
	}
}

func TestSiteSweepTrialsEnumeration(t *testing.T) {
	cfg := sitesweepTestConfig()
	trials, err := SiteSweepTrials(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 64 {
		t.Fatalf("trial count = %d, want 64", len(trials))
	}
	seen := map[string]bool{}
	for i, tr := range trials {
		if tr.ID != i {
			t.Fatalf("trial %d has ID %d", i, tr.ID)
		}
		site := fmt.Sprintf("%s,%s,%s,%s", tr.Tags["row"], tr.Tags["col"], tr.Tags["bit"], tr.Tags["pol"])
		if seen[site] {
			t.Fatalf("duplicate site %s", site)
		}
		seen[site] = true
	}
	// Sampling cuts the universe deterministically.
	cfg.Sample = 10
	a, err := SiteSweepTrials(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SiteSweepTrials(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("sampled counts %d/%d, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Tags["row"] != b[i].Tags["row"] {
			t.Fatal("sampled enumeration not deterministic")
		}
	}
}

// TestSiteSweepShardMergeBitIdentical: the exhaustive sweep sharded in
// two and merged is byte-identical to the single-process run, and every
// corruption fraction is a valid probability.
func TestSiteSweepShardMergeBitIdentical(t *testing.T) {
	cfg := sitesweepTestConfig()
	dir := t.TempDir()

	whole, err := SiteSweepCampaign(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	rrWhole, err := campaign.Run(whole, campaign.Options{
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.MarshalResults(rrWhole.Results)
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	for i := 0; i < 2; i++ {
		c, err := SiteSweepCampaign(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("sitesweep-shard%d.jsonl", i))
		rr, err := campaign.Run(c, campaign.Options{
			Shard:      campaign.Shard{Index: i, Count: 2},
			Checkpoint: path,
			Runner:     campaign.PoolRunner{Engine: tensor.NewParallel(2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		paths = append(paths, path)
	}
	_, merged, err := campaign.MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.MarshalResults(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded+merged sitesweep differs from single-process run")
	}

	var sawCorrupt bool
	for _, r := range rrWhole.Results {
		c := r.Metrics["corrupt"]
		if c < 0 || c > 1 {
			t.Fatalf("trial %d corrupt = %v outside [0,1]", r.TrialID, c)
		}
		if c > 0 {
			sawCorrupt = true
		}
	}
	// Bit 31 stuck-at faults on a saturating array must corrupt something.
	if !sawCorrupt {
		t.Error("no site corrupted any output — sweep is vacuous")
	}

	// The rendered JSON aggregates by (bit, pol): 2 bits x 2 pols = 4 rows.
	rep, err := siteSweepJSON(cfg.Defaulted(), rrWhole.Results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("report has %d points, want 4", len(rep.Points))
	}
	if rep.Sites != 64 {
		t.Fatalf("report sites = %d, want 64", rep.Sites)
	}
}
