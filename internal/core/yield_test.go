package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/snn"
	"falvolt/internal/tensor"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestYieldStudyMechanics(t *testing.T) {
	h := newHarness(t)
	cfg := YieldConfig{
		Chips:     6,
		Defects:   faults.DefectModel{MeanFaulty: 20, Alpha: 1},
		Threshold: 0.5,
		// FaP salvage keeps the test fast (no retraining).
		Mitigation:  Config{Method: FaP},
		EvalSamples: 40,
		Rng:         rand.New(rand.NewSource(42)),
	}
	rep, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 6 {
		t.Errorf("chips = %d", rep.Chips)
	}
	if rep.ShippableMitigated < rep.FaultFree {
		t.Error("fault-free dies always ship")
	}
	if rep.ShippableMitigated > rep.Chips || rep.ShippableNoMitigation > rep.Chips {
		t.Error("shippable counts exceed population")
	}
	if rep.YieldMitigated() < rep.YieldNoMitigation()-1e-9 {
		// With bypass+pruning, salvage should never ship fewer dies than
		// the discard flow on the same population (it strictly removes
		// corruption). Equal is possible.
		t.Errorf("salvage yield %.2f below discard yield %.2f",
			rep.YieldMitigated(), rep.YieldNoMitigation())
	}
	if !strings.Contains(rep.String(), "yield:") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestYieldStudyClustered(t *testing.T) {
	h := newHarness(t)
	cfg := YieldConfig{
		Chips:       3,
		Defects:     faults.DefectModel{MeanFaulty: 15, Alpha: 0.7},
		Clustered:   true,
		Threshold:   0.5,
		Mitigation:  Config{Method: FaP},
		EvalSamples: 24,
		Rng:         rand.New(rand.NewSource(43)),
	}
	rep, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 3 {
		t.Errorf("chips = %d", rep.Chips)
	}
}

func TestYieldStudyValidation(t *testing.T) {
	h := newHarness(t)
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 0, Threshold: 0.5}); err == nil {
		t.Error("zero chips should error")
	}
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 1, Threshold: 0}); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 1, Threshold: 1.5}); err == nil {
		t.Error("threshold > 1 should error")
	}
}

// yieldTestConfig is the shared small-population campaign configuration
// of the sharding/determinism tests (seed-derived, no shared Rng, so
// every process/shard enumerates identical trials).
func yieldTestConfig() YieldConfig {
	return YieldConfig{
		Chips:       6,
		Defects:     faults.DefectModel{MeanFaulty: 20, Alpha: 1},
		Threshold:   0.5,
		Mitigation:  Config{Method: FaP},
		EvalSamples: 32,
		Seed:        42,
	}
}

func yieldTestDeps(t *testing.T, h *testHarness) YieldDeps {
	t.Helper()
	return YieldDeps{
		Model: h.model, Baseline: h.baseline, Arr: h.arr,
		Train: h.train, Test: h.test,
		BuildModel: func() (*snn.Model, error) {
			return snn.Build(h.model.Spec, rand.New(rand.NewSource(1)))
		},
	}
}

// TestYieldCampaignShardMergeBitIdentical is the acceptance gate: a
// yield campaign split into 2 shards (separately checkpointed) and
// merged produces bit-identical results — and an identical report — to
// the single-process run.
func TestYieldCampaignShardMergeBitIdentical(t *testing.T) {
	h := newHarness(t)
	cfg := yieldTestConfig()
	dir := t.TempDir()

	whole, err := YieldCampaign(yieldTestDeps(t, h), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rrWhole, err := campaign.Run(whole, campaign.Options{
		Runner: campaign.PoolRunner{Engine: tensor.Serial()},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.MarshalResults(rrWhole.Results)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := YieldFromResults(rrWhole.Results, cfg.Chips, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	for i := 0; i < 2; i++ {
		c, err := YieldCampaign(yieldTestDeps(t, h), cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("yield-shard%d.jsonl", i))
		rr, err := campaign.Run(c, campaign.Options{
			Shard:      campaign.Shard{Index: i, Count: 2},
			Checkpoint: path,
			Runner:     campaign.PoolRunner{Engine: tensor.NewParallel(2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		paths = append(paths, path)
	}
	_, merged, err := campaign.MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.MarshalResults(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded+merged yield results differ from single-process run:\n--- merged ---\n%s\n--- single ---\n%s", got, want)
	}
	gotRep, err := YieldFromResults(merged, cfg.Chips, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	if *gotRep != *wantRep {
		t.Fatalf("merged report %+v != single-process report %+v", gotRep, wantRep)
	}
}

// TestYieldCampaignResume kills a campaign via a trial-count cutoff and
// resumes it from the checkpoint: no die re-runs, and the final report
// equals the uninterrupted run's.
func TestYieldCampaignResume(t *testing.T) {
	h := newHarness(t)
	cfg := yieldTestConfig()
	path := filepath.Join(t.TempDir(), "yield.jsonl")

	// countingDeps wraps the worker path indirectly: count dies via a
	// wrapper campaign so re-runs are observable.
	base, err := YieldCampaign(yieldTestDeps(t, h), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	trials, err := base.Trials()
	if err != nil {
		t.Fatal(err)
	}
	counting := func() campaign.Campaign {
		return campaign.New("yield", trials, func(lane int) (campaign.Worker, error) {
			w, err := base.NewWorker(lane)
			if err != nil {
				return nil, err
			}
			return campaign.WorkerFunc(func(tr campaign.Trial) (campaign.Result, error) {
				runs.Add(1)
				return w.RunTrial(tr)
			}), nil
		})
	}
	serial := campaign.PoolRunner{Engine: tensor.Serial()}
	rr, err := campaign.Run(counting(), campaign.Options{Checkpoint: path, MaxNew: 2, Runner: serial})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Complete || rr.Executed != 2 {
		t.Fatalf("cutoff run: executed %d, complete %v", rr.Executed, rr.Complete)
	}
	rr2, err := campaign.Run(counting(), campaign.Options{Checkpoint: path, Runner: serial})
	if err != nil {
		t.Fatal(err)
	}
	if !rr2.Complete || rr2.Resumed != 2 || rr2.Executed != cfg.Chips-2 {
		t.Fatalf("resume: resumed %d executed %d complete %v", rr2.Resumed, rr2.Executed, rr2.Complete)
	}
	if runs.Load() != int64(cfg.Chips) {
		t.Fatalf("dies ran %d times across both sittings, want exactly %d", runs.Load(), cfg.Chips)
	}
	rep, err := YieldFromResults(rr2.Results, cfg.Chips, cfg.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *rep != *uninterrupted {
		t.Fatalf("resumed report %+v != uninterrupted %+v", rep, uninterrupted)
	}
}

func TestYieldTrialsDeterministicEnumeration(t *testing.T) {
	cfg := yieldTestConfig()
	a, err := YieldTrials(16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := YieldTrials(16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Chips || len(b) != cfg.Chips {
		t.Fatalf("trial counts %d/%d, want %d", len(a), len(b), cfg.Chips)
	}
	for i := range a {
		if a[i].ID != i || a[i].Seed != b[i].Seed || a[i].Tags["faulty"] != b[i].Tags["faulty"] {
			t.Fatalf("trial %d differs between enumerations: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := YieldTrials(16, 16, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Seed != c[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should enumerate different die populations")
	}
}

// TestYieldFromResultsAccounting checks the yield math on synthetic
// results: fault-free dies always ship, faulty dies ship per-flow by
// threshold, and the mean is exact.
func TestYieldFromResultsAccounting(t *testing.T) {
	mk := func(id, faulty int, raw, mit float64) campaign.Result {
		m := map[string]float64{"faulty": float64(faulty)}
		if faulty > 0 {
			m["raw"], m["mit"] = raw, mit
		}
		return campaign.Result{TrialID: id, Key: fmt.Sprintf("die%04d", id), Metrics: m}
	}
	results := []campaign.Result{
		mk(0, 0, 0, 0),        // fault-free: ships in both flows
		mk(1, 10, 0.40, 0.90), // salvaged only
		mk(2, 4, 0.92, 0.95),  // ships in both
		mk(3, 30, 0.20, 0.30), // unsalvageable
		mk(4, 8, 0.85, 0.85),  // exactly at threshold: ships (>=)
	}
	rep, err := YieldFromResults(results, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 5 || rep.FaultFree != 1 {
		t.Errorf("chips/faultfree = %d/%d", rep.Chips, rep.FaultFree)
	}
	if rep.ShippableNoMitigation != 3 { // dies 0, 2, 4
		t.Errorf("no-mitigation shippable = %d, want 3", rep.ShippableNoMitigation)
	}
	if rep.ShippableMitigated != 4 { // dies 0, 1, 2, 4
		t.Errorf("mitigated shippable = %d, want 4", rep.ShippableMitigated)
	}
	if want := float64(0+10+4+30+8) / 5; rep.MeanFaulty != want {
		t.Errorf("mean faulty = %v, want %v", rep.MeanFaulty, want)
	}
	if math.Abs(rep.YieldNoMitigation()-0.6) > 1e-15 || math.Abs(rep.YieldMitigated()-0.8) > 1e-15 {
		t.Errorf("yields = %v / %v", rep.YieldNoMitigation(), rep.YieldMitigated())
	}

	// Incomplete result sets are refused.
	if _, err := YieldFromResults(results[:4], 5, 0.85); err == nil {
		t.Error("missing die should be an error")
	}
	// Order independence: reversed input gives the identical report.
	rev := []campaign.Result{results[4], results[3], results[2], results[1], results[0]}
	rep2, err := YieldFromResults(rev, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if *rep2 != *rep {
		t.Errorf("report depends on result order: %+v vs %+v", rep2, rep)
	}
}

func TestYieldReportMath(t *testing.T) {
	var zero YieldReport
	if zero.YieldNoMitigation() != 0 || zero.YieldMitigated() != 0 {
		t.Error("zero-chip report should yield 0, not NaN")
	}
	rep := YieldReport{Chips: 8, FaultFree: 2, ShippableNoMitigation: 3, ShippableMitigated: 7, MeanFaulty: 12.5}
	if rep.YieldNoMitigation() != 3.0/8 || rep.YieldMitigated() != 7.0/8 {
		t.Errorf("yield fractions %v / %v", rep.YieldNoMitigation(), rep.YieldMitigated())
	}
	s := rep.String()
	for _, want := range []string{"8 dies", "12.5 faulty", "37.5%", "87.5%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// TestYieldReportGolden pins the YieldReport JSON schema: cmd/campaign
// merge emits it, so drift must break CI instead of downstream parsers.
func TestYieldReportGolden(t *testing.T) {
	rep := YieldReport{Chips: 8, FaultFree: 2, ShippableNoMitigation: 3, ShippableMitigated: 7, MeanFaulty: 12.5}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "yieldreport.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("YieldReport JSON drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
