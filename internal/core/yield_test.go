package core

import (
	"math/rand"
	"strings"
	"testing"

	"falvolt/internal/faults"
)

func TestYieldStudyMechanics(t *testing.T) {
	h := newHarness(t)
	cfg := YieldConfig{
		Chips:     6,
		Defects:   faults.DefectModel{MeanFaulty: 20, Alpha: 1},
		Threshold: 0.5,
		// FaP salvage keeps the test fast (no retraining).
		Mitigation:  Config{Method: FaP},
		EvalSamples: 40,
		Rng:         rand.New(rand.NewSource(42)),
	}
	rep, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 6 {
		t.Errorf("chips = %d", rep.Chips)
	}
	if rep.ShippableMitigated < rep.FaultFree {
		t.Error("fault-free dies always ship")
	}
	if rep.ShippableMitigated > rep.Chips || rep.ShippableNoMitigation > rep.Chips {
		t.Error("shippable counts exceed population")
	}
	if rep.YieldMitigated() < rep.YieldNoMitigation()-1e-9 {
		// With bypass+pruning, salvage should never ship fewer dies than
		// the discard flow on the same population (it strictly removes
		// corruption). Equal is possible.
		t.Errorf("salvage yield %.2f below discard yield %.2f",
			rep.YieldMitigated(), rep.YieldNoMitigation())
	}
	if !strings.Contains(rep.String(), "yield:") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestYieldStudyClustered(t *testing.T) {
	h := newHarness(t)
	cfg := YieldConfig{
		Chips:       3,
		Defects:     faults.DefectModel{MeanFaulty: 15, Alpha: 0.7},
		Clustered:   true,
		Threshold:   0.5,
		Mitigation:  Config{Method: FaP},
		EvalSamples: 24,
		Rng:         rand.New(rand.NewSource(43)),
	}
	rep, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 3 {
		t.Errorf("chips = %d", rep.Chips)
	}
}

func TestYieldStudyValidation(t *testing.T) {
	h := newHarness(t)
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 0, Threshold: 0.5}); err == nil {
		t.Error("zero chips should error")
	}
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 1, Threshold: 0}); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := YieldStudy(h.model, h.baseline, h.arr, h.train, h.test,
		YieldConfig{Chips: 1, Threshold: 1.5}); err == nil {
		t.Error("threshold > 1 should error")
	}
}
