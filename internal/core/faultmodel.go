package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// The "faultmodel" campaign kind: systolic-level characterization of a
// pluggable fault model. Every (rate × repeat) cell injects a
// seed-addressed fault instance into an array and measures output
// corruption against a clean twin over a short spiking inference — no
// trained network in the loop, so large (model × rate × seed) grids are
// cheap enough for the cluster to grind exhaustively, and every cell
// reproduces bit-identically on any shard split or worker count.

// FaultModelTrials enumerates the campaign deterministically: rates in
// spec order, repeats within each rate, IDs dense. Each trial's seed is
// an injective function of (campaign seed, trial ID), so a cell's fault
// instance is addressable from the trial alone.
func FaultModelTrials(cfg spec.FaultModelCampaignSpec, seed int64) []campaign.Trial {
	var trials []campaign.Trial
	id := 0
	for _, rate := range cfg.Rates {
		key := "rate=" + strconv.FormatFloat(rate, 'g', -1, 64)
		for rep := 0; rep < cfg.Repeats; rep++ {
			trials = append(trials, campaign.Trial{
				ID:   id,
				Key:  key,
				Seed: seed + 7919*int64(id),
				Tags: map[string]string{
					"rate": strconv.FormatFloat(rate, 'g', -1, 64),
					"rep":  strconv.Itoa(rep),
				},
			})
			id++
		}
	}
	return trials
}

// faultModelWorker is one lane's private state: a clean/faulty array
// pair plus the deterministic workload (weights and spike input derived
// from the campaign seed — identical on every lane, shard and worker
// count, so only the trial's fault instance varies between cells).
type faultModelWorker struct {
	cfg    spec.FaultModelCampaignSpec
	model  faults.FaultModel
	clean  *systolic.Array
	faulty *systolic.Array
	wm     *systolic.Matrix
	x      *tensor.Tensor
	yClean *tensor.Tensor
}

func newFaultModelWorker(d spec.FaultModelCampaignSpec, model faults.FaultModel, seed int64) (campaign.Worker, error) {
	side := d.Array
	mk := func() (*systolic.Array, error) {
		return systolic.New(systolic.Config{
			Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true,
			Engine: tensor.Serial(),
		})
	}
	clean, err := mk()
	if err != nil {
		return nil, err
	}
	faulty, err := mk()
	if err != nil {
		return nil, err
	}
	// Ragged K and M tiles: K > Rows exercises multi-tile accumulation,
	// M > Cols exercises column reuse — the shapes fault effects
	// propagate through in a real deployment.
	k := side + side/2 + 1
	m := side + side/3 + 2
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(m, k)
	w.RandNormal(rng, 0.5)
	wm := systolic.QuantizeMatrix(w, fixed.Q16x16)
	x := tensor.New(d.Batch, k)
	xrng := rand.New(rand.NewSource(seed + 1))
	for i := range x.Data {
		if xrng.Float64() < d.Density {
			x.Data[i] = 1
		}
	}
	fw := &faultModelWorker{cfg: d, model: model, clean: clean, faulty: faulty, wm: wm, x: x}
	fw.yClean = clean.Forward(x, wm, true)
	return fw, nil
}

// RunTrial injects the trial's (rate, seed) cell and steps the faulty
// array through the inference horizon, comparing each timestep's output
// against the clean reference. Metrics accumulate in index order over
// float64, so a trial's result is bit-identical wherever it runs.
func (fw *faultModelWorker) RunTrial(t campaign.Trial) (campaign.Result, error) {
	rate, err := strconv.ParseFloat(t.Tags["rate"], 64)
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: bad rate tag %q", t.ID, t.Tags["rate"])
	}
	fw.faulty.ClearFaults()
	if err := fw.model.Inject(fw.faulty, rate, t.Seed); err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %w", t.ID, err)
	}
	var corrupt, total int
	var sumAbs, maxAbs float64
	for step := 0; step < fw.cfg.Timesteps; step++ {
		fw.faulty.SetTimestep(step)
		yf := fw.faulty.Forward(fw.x, fw.wm, true)
		for i := range yf.Data {
			d := math.Abs(float64(yf.Data[i]) - float64(fw.yClean.Data[i]))
			total++
			if d != 0 {
				corrupt++
				sumAbs += d
				if d > maxAbs {
					maxAbs = d
				}
			}
		}
	}
	fw.faulty.ClearFaults()
	return campaign.Result{
		TrialID: t.ID,
		Key:     t.Key,
		Metrics: map[string]float64{
			"corrupt": float64(corrupt) / float64(total),
			"mae":     sumAbs / float64(total),
			"max":     maxAbs,
		},
	}, nil
}

// FaultModelCampaign builds the runnable campaign for a faultModel
// section (validated here, so mis-specified sections fail at build
// time on every surface — cmd flags, spec files, cluster workers).
func FaultModelCampaign(cfg spec.FaultModelCampaignSpec, seed int64) (campaign.Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Defaulted()
	model, err := d.Model.FaultModel()
	if err != nil {
		return nil, err
	}
	meta := map[string]string{
		"model": model.Name(),
		"array": strconv.Itoa(d.Array),
	}
	trials := FaultModelTrials(d, seed)
	return campaign.NewWithMeta("faultmodel", meta, trials, func(lane int) (campaign.Worker, error) {
		return newFaultModelWorker(d, model, seed)
	}), nil
}

// faultModelPoint is one rate row of the rendered report.
type faultModelPoint struct {
	Rate    float64 `json:"rate"`
	Corrupt float64 `json:"corrupt"`
	MAE     float64 `json:"mae"`
	Max     float64 `json:"max"`
}

// faultModelReport is the merge-rendered JSON artifact.
type faultModelReport struct {
	Model  string            `json:"model"`
	Array  int               `json:"array"`
	Points []faultModelPoint `json:"points"`
}

func faultModelJSON(d spec.FaultModelCampaignSpec, results []campaign.Result) (*faultModelReport, error) {
	corrupt := campaign.GroupMean(results, "corrupt")
	mae := campaign.GroupMean(results, "mae")
	maxm := campaign.GroupMean(results, "max")
	rep := &faultModelReport{Model: d.Model.EffectiveKind(), Array: d.Array}
	for _, rate := range d.Rates {
		key := "rate=" + strconv.FormatFloat(rate, 'g', -1, 64)
		rep.Points = append(rep.Points, faultModelPoint{
			Rate:    rate,
			Corrupt: corrupt[key],
			MAE:     mae[key],
			Max:     maxm[key],
		})
	}
	return rep, nil
}

func renderFaultModel(w io.Writer, d spec.FaultModelCampaignSpec, results []campaign.Result) error {
	rep, err := faultModelJSON(d, results)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fault-model characterization: model=%s array=%dx%d\n", rep.Model, rep.Array, rep.Array)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "rate", "corrupt", "mae", "max")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-10g %-12.4f %-12.4f %-12.4f\n", p.Rate, p.Corrupt, p.MAE, p.Max)
	}
	return nil
}

func init() {
	spec.Register("faultmodel", func(s *spec.Spec, opt spec.BuildOpts) (*spec.Built, error) {
		if s.FaultModel == nil {
			return nil, fmt.Errorf("core: spec kind %q needs a faultModel section", s.Kind)
		}
		d := s.FaultModel.Defaulted()
		cam, err := FaultModelCampaign(*s.FaultModel, s.EffectiveSeed())
		if err != nil {
			return nil, err
		}
		return &spec.Built{
			Campaign: cam,
			Render: func(w io.Writer, results []campaign.Result) error {
				return renderFaultModel(w, d, results)
			},
			JSON: func(results []campaign.Result) (any, error) {
				return faultModelJSON(d, results)
			},
		}, nil
	})
}
