package core

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"falvolt/internal/campaign"
	"falvolt/internal/faults"
	"falvolt/internal/mitigation"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
)

// The "salvage" campaign kind: the head-to-head mitigation benchmark.
// Every (fault model × rate × mitigation × repeat) cell restores the
// shared trained baseline, injects a seed-addressed fault instance,
// measures raw (unmitigated) accuracy, applies the cell's salvage
// strategy through the mitigation.Mitigation seam, and measures
// salvaged accuracy plus the costs that separate the strategies:
// retraining epochs spent and per-inference MAC-cycle overhead. Trials
// are a pure function of the spec, per-trial randomness is a pure
// function of the trial seed, and metrics fold deterministically, so
// sharded merges are byte-identical to a single-process run.

// SalvageMitLabels names each mitigation axis entry: the kind, suffixed
// with its list index when the same kind appears more than once (e.g. a
// falvolt epoch sweep). A pure function of the spec, so every shard,
// worker and report renderer agrees on the keys.
func SalvageMitLabels(mits []spec.MitigationSpec) []string {
	counts := map[string]int{}
	for _, m := range mits {
		counts[m.EffectiveKind()]++
	}
	labels := make([]string, len(mits))
	for i, m := range mits {
		kind := m.EffectiveKind()
		if counts[kind] > 1 {
			labels[i] = fmt.Sprintf("%s#%d", kind, i)
		} else {
			labels[i] = kind
		}
	}
	return labels
}

// SalvageTrials enumerates the grid deterministically: fault models,
// then mitigations, then rates, then repeats, IDs dense. The Key names
// the (model, mitigation, rate) cell the report averages over; Tags pin
// the exact coordinates.
func SalvageTrials(d spec.SalvageCampaignSpec, seed int64) []campaign.Trial {
	labels := SalvageMitLabels(d.Mitigations)
	var trials []campaign.Trial
	id := 0
	for _, model := range d.Models {
		for mi, label := range labels {
			for _, rate := range d.Rates {
				rtag := strconv.FormatFloat(rate, 'g', -1, 64)
				key := fmt.Sprintf("model=%s|mit=%s|rate=%s", model, label, rtag)
				for rep := 0; rep < d.Repeats; rep++ {
					trials = append(trials, campaign.Trial{
						ID:   id,
						Key:  key,
						Seed: seed + 7919*int64(id),
						Tags: map[string]string{
							"model": model,
							"mit":   label,
							"miti":  strconv.Itoa(mi),
							"rate":  rtag,
							"rep":   strconv.Itoa(rep),
						},
					})
					id++
				}
			}
		}
	}
	return trials
}

// salvageMeta fingerprints every result-affecting knob so shards run
// with different settings refuse to merge.
func salvageMeta(d spec.SalvageCampaignSpec, seed int64, extra map[string]string) map[string]string {
	mits := make([]string, len(d.Mitigations))
	for i, ms := range d.Mitigations {
		mits[i] = fmt.Sprintf("%s:e%d:lr%g:v%g:b%d",
			ms.EffectiveKind(), ms.Epochs, ms.LR, ms.Vth, ms.BypassBit)
	}
	rates := make([]string, len(d.Rates))
	for i, r := range d.Rates {
		rates[i] = strconv.FormatFloat(r, 'g', -1, 64)
	}
	m := map[string]string{
		"models":      strings.Join(d.Models, "+"),
		"mitigations": strings.Join(mits, "+"),
		"rates":       strings.Join(rates, "+"),
		"repeats":     strconv.Itoa(d.Repeats),
		"array":       strconv.Itoa(d.Array),
		"base-epochs": strconv.Itoa(d.BaseEpochs),
		"epochs":      strconv.Itoa(d.Epochs),
		"batch":       strconv.Itoa(d.Batch),
		"seed":        strconv.FormatInt(seed, 10),
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}

// salvageCampaign implements campaign.Campaign and
// campaign.MetaProvider, with the expensive resources (trained
// baseline, arrays) built lazily on first worker use — planning trials,
// and resuming a checkpoint that already covers every trial, never pay
// for baseline training.
type salvageCampaign struct {
	d           spec.SalvageCampaignSpec
	seed        int64
	fingerprint map[string]string
	build       func() (YieldDeps, error)

	once sync.Once
	deps YieldDeps
	err  error
}

// SalvageCampaign builds the runnable campaign for a salvage section.
// The baseline resources are shared with the yield study
// (SyntheticYieldBuild): one trained model, its fault-free snapshot, a
// clean array, and a BuildModel factory for parallel lanes.
func SalvageCampaign(cfg spec.SalvageCampaignSpec, seed int64,
	fingerprint map[string]string, build func() (YieldDeps, error)) (campaign.Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &salvageCampaign{
		d: cfg.Defaulted(), seed: seed, fingerprint: fingerprint, build: build,
	}, nil
}

// Name implements campaign.Campaign.
func (c *salvageCampaign) Name() string { return "salvage" }

// Meta implements campaign.MetaProvider.
func (c *salvageCampaign) Meta() map[string]string {
	return salvageMeta(c.d, c.seed, c.fingerprint)
}

// Trials implements campaign.Campaign without touching the resources.
func (c *salvageCampaign) Trials() ([]campaign.Trial, error) {
	return SalvageTrials(c.d, c.seed), nil
}

// NewWorker implements campaign.Campaign, building the resources once.
// Lane 0 reuses the shared model and array; further lanes build private
// replicas via BuildModel.
func (c *salvageCampaign) NewWorker(lane int) (campaign.Worker, error) {
	c.once.Do(func() {
		deps, err := c.build()
		if err != nil {
			c.err = err
			return
		}
		acfg := deps.Arr.Config()
		if acfg.Rows != c.d.Array || acfg.Cols != c.d.Array {
			c.err = fmt.Errorf("core: salvage campaign built a %dx%d array, planned %dx%d",
				acfg.Rows, acfg.Cols, c.d.Array, c.d.Array)
			return
		}
		c.deps = deps
	})
	if c.err != nil {
		return nil, c.err
	}
	w := &salvageWorker{c: c}
	if lane == 0 {
		w.model, w.arr = c.deps.Model, c.deps.Arr
		return w, nil
	}
	if c.deps.BuildModel == nil {
		return nil, fmt.Errorf("core: salvage campaign is single-lane (no BuildModel); run it on a serial runner")
	}
	m, err := c.deps.BuildModel()
	if err != nil {
		return nil, err
	}
	arr, err := systolic.New(c.deps.Arr.Config())
	if err != nil {
		return nil, err
	}
	w.model, w.arr = m, arr
	return w, nil
}

// salvageWorker processes cells on a private model+array pair.
type salvageWorker struct {
	c     *salvageCampaign
	model *snn.Model
	arr   *systolic.Array
}

// RunTrial implements campaign.Worker: one (model × rate × mitigation ×
// repeat) cell.
func (w *salvageWorker) RunTrial(t campaign.Trial) (campaign.Result, error) {
	d := w.c.d
	rate, err := strconv.ParseFloat(t.Tags["rate"], 64)
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: bad rate tag %q", t.ID, t.Tags["rate"])
	}
	mi, err := strconv.Atoi(t.Tags["miti"])
	if err != nil || mi < 0 || mi >= len(d.Mitigations) {
		return campaign.Result{}, fmt.Errorf("core: trial %d: bad mitigation tag %q", t.ID, t.Tags["miti"])
	}
	ms := d.Mitigations[mi]
	fmodel, err := faults.ModelByName(t.Tags["model"])
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %w", t.ID, err)
	}

	net := w.model.Net
	net.Undeploy()
	if err := net.LoadState(w.c.deps.Baseline); err != nil {
		return campaign.Result{}, err
	}
	w.arr.ClearFaults()
	w.arr.SetBypass(false)
	if err := fmodel.Inject(w.arr, rate, t.Seed); err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: inject %s: %w", t.ID, fmodel.Name(), err)
	}

	// Raw (unmitigated) accuracy on the faulty deployment, bypass off —
	// the floor every strategy is measured against.
	net.Deploy(w.arr)
	rawAcc := snn.EvaluateWith(nil, net, w.c.deps.Test, d.Batch)
	net.Undeploy()

	// Salvage: the strategy owns deployment, bypass and retraining. The
	// concrete accumulator fault map (empty for bitflip/transient, whose
	// fault state lives elsewhere on the array) rides along.
	epochs := ms.EffectiveEpochs()
	if epochs == 0 {
		epochs = d.Epochs
	}
	lr := ms.EffectiveLR()
	if lr == 0 {
		lr = 0.01
	}
	mt := ms.TrainingOrZero()
	batch, clip := mt.Batch, mt.ClipNorm
	if batch == 0 {
		batch = 16
	}
	if clip == 0 {
		clip = 5
	}
	mit, err := mitigation.New(ms.EffectiveKind(), mitigation.Options{
		Train:      w.c.deps.Train,
		Test:       w.c.deps.Test,
		Epochs:     epochs,
		BatchSize:  batch,
		LR:         lr,
		ClipNorm:   clip,
		FixedVth:   ms.Vth,
		Rng:        rand.New(rand.NewSource(t.Seed + 1)),
		BypassBit:  ms.BypassBit,
		Replicas:   mt.Replicas,
		MicroBatch: mt.MicroBatch,
	})
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %w", t.ID, err)
	}
	out, err := mit.Apply(w.model, w.arr, w.arr.FaultMap())
	if err != nil {
		return campaign.Result{}, fmt.Errorf("core: trial %d: %s: %w", t.ID, mit.Name(), err)
	}

	// Salvaged accuracy and per-inference overhead on the deployment the
	// strategy left behind. Stats counters are order-independent
	// integers, so the cycle count is bit-identical on every engine.
	w.arr.ResetStats()
	acc := snn.EvaluateWith(nil, net, w.c.deps.Test, d.Batch)
	stats := w.arr.Stats()
	perInf := 0.0
	if n := len(w.c.deps.Test); n > 0 {
		perInf = float64(stats.MACCycles) / float64(n)
	}

	net.Undeploy()
	w.arr.ClearFaults()
	w.arr.SetBypass(false)
	return campaign.Result{
		TrialID: t.ID,
		Key:     t.Key,
		Metrics: map[string]float64{
			"raw":       rawAcc,
			"acc":       acc,
			"recovered": acc - rawAcc,
			"epochs":    float64(out.RetrainEpochs),
			"pruned":    out.PrunedFraction,
			"remapped":  float64(out.RemappedLayers),
			"bypassed":  float64(out.BypassedPEs),
			"clamped":   float64(out.ClampedLayers),
			"mac":       perInf,
		},
	}, nil
}

// SyntheticSalvageBuild adapts the canonical synthetic-MNIST baseline
// (SyntheticYieldBuild — the same dataset, shrunk model and array every
// distributed surface constructs bit-identically) to a salvage
// campaign's knobs.
func SyntheticSalvageBuild(d spec.SalvageCampaignSpec, seed int64, log io.Writer) func() (YieldDeps, error) {
	return SyntheticYieldBuild(seed, d.BaseEpochs, d.Array, 0, log)
}
