// Command yield quantifies the paper's §I motivation: at realistic defect
// densities, discarding every die with stuck-at faults destroys
// manufacturing yield, while FalVolt-style salvage (one per-chip
// mitigation run keyed to the die's fault map) ships most of them.
//
// It trains one baseline model, samples a population of dies from a
// (clustered) defect model, and reports shippable yield for the discard
// flow vs the salvage flow at a given accuracy threshold. The population
// runs as a fault-sweep campaign (internal/campaign): dies execute in
// parallel across compute-engine lanes, -checkpoint makes the run
// resumable, -shard splits it across processes (merge the partial
// files with `campaign merge`), and -coordinator serves the dies to
// remote worker daemons (`campaign work -c yield` with matching flags).
//
// Usage:
//
//	yield -chips 20 -mean-faulty 80 -threshold 0.9
//	yield -chips 10 -mean-faulty 200 -method falvolt -epochs 6
//	yield -chips 40 -shard 0/2 -checkpoint y0.jsonl   # process 1
//	yield -chips 40 -shard 1/2 -checkpoint y1.jsonl   # process 2
//	campaign merge y0.jsonl y1.jsonl                  # combined report
//
//	yield -chips 40 -coordinator :9090 -checkpoint y.jsonl   # coordinator
//	campaign work -c yield -chips 40 -coordinator http://host:9090  # each worker
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/core"
	"falvolt/internal/faults"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend    = flag.String("backend", "", tensor.BackendFlagDoc)
		chips      = flag.Int("chips", 12, "number of simulated dies")
		meanFaulty = flag.Float64("mean-faulty", 60, "mean faulty PEs per die")
		alpha      = flag.Float64("alpha", 1.0, "defect clustering (smaller = heavier tails)")
		clustered  = flag.Bool("clustered", true, "spatially clustered fault maps")
		threshold  = flag.Float64("threshold", 0.85, "minimum shipping accuracy")
		method     = flag.String("method", "falvolt", "salvage policy: fap | fapit | falvolt")
		epochs     = flag.Int("epochs", 4, "retraining epochs per salvaged die")
		arrayN     = flag.Int("array", 64, "array side")
		baseEp     = flag.Int("base-epochs", 12, "baseline training epochs")
		seed       = flag.Int64("seed", 7, "seed")
		shardArg   = flag.String("shard", "", "run the i-th of n interleaved die subsets (i/n); merge partials with `campaign merge`")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint: append per-die results, resume by skipping completed dies")
		coordArg   = flag.String("coordinator", "", "serve the dies to remote workers on this listen address (host:port); workers run `campaign work -c yield` with matching flags")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		fail(err)
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		fail(err)
	}
	if !shard.IsWhole() && *checkpoint == "" {
		fail(fmt.Errorf("-shard needs -checkpoint so the partial results can be merged"))
	}
	if *coordArg != "" && !shard.IsWhole() {
		fail(fmt.Errorf("-coordinator shards the campaign itself; drop -shard"))
	}
	if strings.Contains(*coordArg, "://") {
		fail(fmt.Errorf("-coordinator here is a listen address (host:port), got URL %q; the URL form belongs on `campaign work -coordinator`", *coordArg))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var m core.Method
	switch strings.ToLower(*method) {
	case "fap":
		m = core.FaP
	case "fapit":
		m = core.FaPIT
	case "falvolt":
		m = core.FalVolt
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	cfg := core.YieldConfig{
		Chips:     *chips,
		Defects:   faults.DefectModel{MeanFaulty: *meanFaulty, Alpha: *alpha},
		Clustered: *clustered,
		Threshold: *threshold,
		Mitigation: core.Config{
			Method: m, Epochs: *epochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		},
		EvalSamples: 96,
		Seed:        *seed + 2,
	}
	// The baseline trains lazily on first worker use: a plain run pays
	// for it up front as before, while a fully-resumed checkpoint or a
	// -coordinator process (whose trials all execute remotely) skips
	// it. Build closure and fingerprint are shared with cmd/campaign
	// (core.Synthetic*), so shard files and cluster workers from either
	// tool interoperate.
	cam, err := core.LazyYieldCampaign(*arrayN, *arrayN, cfg,
		core.SyntheticYieldFingerprint(*baseEp),
		core.SyntheticYieldBuild(*seed, *baseEp, *arrayN, *threshold, os.Stdout))
	if err != nil {
		fail(err)
	}
	opt := campaign.Options{
		Context: ctx, Shard: shard, Checkpoint: *checkpoint, Log: os.Stderr,
	}
	if *coordArg != "" {
		opt.Runner = cluster.NewCoordinator(cluster.CoordinatorConfig{
			Addr: *coordArg, Log: os.Stderr,
		})
	}
	rr, err := campaign.Run(cam, opt)
	if err != nil {
		fail(err)
	}
	if !shard.IsWhole() {
		fmt.Printf("shard %s complete: %d dies -> %s; merge all shards with `campaign merge`\n",
			shard, len(rr.Results), *checkpoint)
		return
	}
	rep, err := core.YieldFromResults(rr.Results, cfg.Chips, cfg.Threshold)
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	fmt.Printf("fault-free dies: %d/%d; salvage policy: %s (%d epochs)\n",
		rep.FaultFree, rep.Chips, m, *epochs)
	lat, en := systolic.ReexecutionOverhead()
	fmt.Printf("for comparison, redundant re-execution would cost %.2fx latency and %.2fx energy on every inference, forever\n", lat, en)
}
