// Command yield quantifies the paper's §I motivation: at realistic defect
// densities, discarding every die with stuck-at faults destroys
// manufacturing yield, while FalVolt-style salvage (one per-chip
// mitigation run keyed to the die's fault map) ships most of them.
//
// It is a thin shim over the declarative experiment spec
// (internal/spec): the flags compile into a Spec of kind "yield",
// -dump-spec prints it, -spec runs from a spec file, and the spec
// registry builds the identical campaign here, in cmd/campaign, and on
// cluster workers — so shard files and workers from any tool
// interoperate by construction. The population runs as a fault-sweep
// campaign (internal/campaign): dies execute in parallel across
// compute-engine lanes, -checkpoint makes the run resumable, -shard
// splits it across processes (merge the partial files with `campaign
// merge`), and -coordinator serves the dies to remote spec-free worker
// daemons (`campaign work -coordinator <url>`).
//
// Usage:
//
//	yield -chips 20 -mean-faulty 80 -threshold 0.9
//	yield -chips 10 -mean-faulty 200 -method falvolt -epochs 6
//	yield -chips 40 -shard 0/2 -checkpoint y0.jsonl   # process 1
//	yield -chips 40 -shard 1/2 -checkpoint y1.jsonl   # process 2
//	campaign merge y0.jsonl y1.jsonl                  # combined report
//
//	yield -chips 40 -coordinator :9090 -checkpoint y.jsonl   # coordinator
//	campaign work -coordinator http://host:9090              # each worker
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/core"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	// Flag defaults come from the one definition of the yield defaults
	// (spec.YieldSpec.Defaulted), so this tool, cmd/campaign and the
	// spec builder cannot drift apart.
	def := spec.YieldSpec{}.Defaulted()
	var (
		backend    = flag.String("backend", "", tensor.BackendFlagDoc)
		chips      = flag.Int("chips", def.Chips, "number of simulated dies")
		meanFaulty = flag.Float64("mean-faulty", def.MeanFaulty, "mean faulty PEs per die")
		alpha      = flag.Float64("alpha", def.Alpha, "defect clustering (smaller = heavier tails)")
		clustered  = flag.Bool("clustered", true, "spatially clustered fault maps")
		threshold  = flag.Float64("threshold", def.Threshold, "minimum shipping accuracy")
		method     = flag.String("method", def.Method, "salvage policy: fap | fapit | falvolt")
		epochs     = flag.Int("epochs", def.MitEpochs, "retraining epochs per salvaged die")
		arrayN     = flag.Int("array", def.Array, "array side")
		baseEp     = flag.Int("base-epochs", def.BaseEpochs, "baseline training epochs")
		seed       = flag.Int64("seed", 7, "seed")
		specPath   = flag.String("spec", "", "experiment spec JSON file (replaces the config flags; \"-\" reads stdin)")
		dumpSpec   = flag.Bool("dump-spec", false, "print the spec compiled from the flags and exit")
		shardArg   = flag.String("shard", "", "run the i-th of n interleaved die subsets (i/n); merge partials with `campaign merge`")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint: append per-die results, resume by skipping completed dies")
		coordArg   = flag.String("coordinator", "", "serve the dies to remote spec-free workers on this listen address (host:port); workers run `campaign work -coordinator <url>`")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "yield: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var s *spec.Spec
	if *specPath != "" {
		loaded, err := spec.LoadOverride(*specPath, *backend)
		if err != nil {
			fail(err)
		}
		if loaded.Kind != "yield" || loaded.Yield == nil {
			fail(fmt.Errorf("spec kind %q is not a yield study (run it with cmd/campaign)", loaded.Kind))
		}
		s = loaded
	} else {
		s = &spec.Spec{
			Version: spec.Version, Kind: "yield", Seed: *seed, Backend: *backend,
			Yield: &spec.YieldSpec{
				Chips: *chips, MeanFaulty: *meanFaulty, Alpha: *alpha,
				Clustered: *clustered, Threshold: *threshold, Method: *method,
				MitEpochs: *epochs, BaseEpochs: *baseEp, Array: *arrayN,
			},
		}
	}
	if *dumpSpec {
		if err := s.Dump(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if err := tensor.SetDefaultByName(s.Backend); err != nil {
		fail(err)
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		fail(err)
	}
	if shard.IsWhole() && s.Shard != "" {
		if shard, err = campaign.ParseShard(s.Shard); err != nil {
			fail(err)
		}
	}
	if !shard.IsWhole() && *checkpoint == "" {
		fail(fmt.Errorf("-shard needs -checkpoint so the partial results can be merged"))
	}
	if *coordArg != "" && !shard.IsWhole() {
		fail(fmt.Errorf("-coordinator shards the campaign itself; drop -shard"))
	}
	if strings.Contains(*coordArg, "://") {
		fail(fmt.Errorf("-coordinator here is a listen address (host:port), got URL %q; the URL form belongs on `campaign work -coordinator`", *coordArg))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The registry is the single construction path for yield campaigns:
	// cmd/campaign and spec-free cluster workers build bit-identical
	// populations from the same canonical spec.
	built, err := spec.Build(s, spec.BuildOpts{Log: os.Stderr})
	if err != nil {
		fail(err)
	}
	opt := campaign.Options{
		Context: ctx, Shard: shard, Checkpoint: *checkpoint, Log: os.Stderr,
	}
	if *coordArg != "" {
		opt.Runner = cluster.NewCoordinator(cluster.CoordinatorConfig{
			Addr: *coordArg, Spec: s, Log: os.Stderr,
		})
	}
	rr, err := campaign.Run(built.Campaign, opt)
	if err != nil {
		fail(err)
	}
	if !shard.IsWhole() {
		fmt.Printf("shard %s complete: %d dies -> %s; merge all shards with `campaign merge`\n",
			shard, len(rr.Results), *checkpoint)
		return
	}
	// One report computation feeds both the standard line (identical to
	// built.Render's output, used by cmd/campaign) and the trailer.
	cfg, err := core.YieldConfigFromSpec(s)
	if err != nil {
		fail(err)
	}
	rep, err := core.YieldFromResults(rr.Results, cfg.Chips, cfg.Threshold)
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	fmt.Printf("fault-free dies: %d/%d; salvage policy: %s (%d epochs)\n",
		rep.FaultFree, rep.Chips, cfg.Mitigation.Method, cfg.Mitigation.Epochs)
	lat, en := systolic.ReexecutionOverhead()
	fmt.Printf("for comparison, redundant re-execution would cost %.2fx latency and %.2fx energy on every inference, forever\n", lat, en)
}
