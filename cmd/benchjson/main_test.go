package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: falvolt
cpu: Test CPU
BenchmarkConvForward-8         	       5	 227025639 ns/op
BenchmarkConvForwardSerial-8   	       1	1094767276 ns/op	    8208 B/op	      11 allocs/op
BenchmarkPLIF/sub-case-8       	 1000000	       0.51 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	falvolt	12.3s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkConvForward-8"]
	if e.Iterations != 5 || e.NsPerOp != 227025639 {
		t.Errorf("ConvForward = %+v", e)
	}
	if e.BytesPerOp != nil || e.AllocsPerOp != nil {
		t.Errorf("ConvForward should have no -benchmem fields: %+v", e)
	}
	s := got["BenchmarkConvForwardSerial-8"]
	if s.BytesPerOp == nil || *s.BytesPerOp != 8208 || s.AllocsPerOp == nil || *s.AllocsPerOp != 11 {
		t.Errorf("ConvForwardSerial memstats = %+v", s)
	}
	p := got["BenchmarkPLIF/sub-case-8"]
	if p.NsPerOp != 0.51 || p.Iterations != 1000000 {
		t.Errorf("sub-benchmark = %+v", p)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got, err := parse(strings.NewReader("PASS\nok something\n--- FAIL: nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("noise parsed as benchmarks: %v", got)
	}
}
