// Command benchjson converts `go test -bench` text output into a JSON
// document mapping benchmark name to its measurements (ns/op, B/op,
// allocs/op, iterations). CI pipes the benchmark smoke run through it
// and uploads BENCH_results.json as an artifact, so every commit leaves
// a machine-readable perf sample and regressions can be tracked across
// the build history.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH_results.json
//
// With -baseline, benchjson instead compares the stdin results against a
// previously recorded JSON document and exits nonzero on regressions
// (see compare.go):
//
//	go test -bench=. ./... | benchjson -baseline BENCH_results.json -normalize -threshold 1.5
//
// Non-benchmark lines (PASS, ok, pkg headers) are ignored, so the full
// `go test` stream can be piped in unfiltered. Names keep their
// GOMAXPROCS suffix ("-8") exactly as go test prints them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"falvolt/internal/campaign"
)

// Entry is one benchmark's parsed measurements. BytesPerOp and
// AllocsPerOp are present only when -benchmem was set.
type Entry struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkConvForward-8   5   227025639 ns/op   8208 B/op   11 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.eE+-]+) ns/op(?:\s+([0-9.eE+-]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// readBaseline loads a previously emitted BENCH_results.json.
func readBaseline(path string) (map[string]Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Entry
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// parse reads go-test benchmark output into name -> Entry. A benchmark
// name appearing twice (same bench re-run) keeps the last measurement.
func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", sc.Text(), err)
			}
			e.BytesPerOp = &b
		}
		if m[5] != "" {
			a, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", sc.Text(), err)
			}
			e.AllocsPerOp = &a
		}
		out[m[1]] = e
	}
	return out, sc.Err()
}

func main() {
	out := flag.String("o", "", "output path (default stdout); written atomically")
	baseline := flag.String("baseline", "", "compare stdin against this BENCH_results.json instead of emitting JSON; exit nonzero on regressions")
	threshold := flag.Float64("threshold", 1.20, "with -baseline: max allowed new/old ns-per-op ratio")
	normalize := flag.Bool("normalize", false, "with -baseline: divide ratios by their median to cancel cross-machine speed differences")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (bench output is read from stdin)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		c := compare(base, entries, *threshold, *normalize)
		report(os.Stdout, c)
		if len(c.Regressions) > 0 {
			os.Exit(1)
		}
		return
	}
	// encoding/json sorts map keys, so output order is deterministic.
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := campaign.WriteFileAtomic(*out, b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(entries), *out)
}
