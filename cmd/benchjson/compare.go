package main

import (
	"fmt"
	"io"
	"regexp"
	"sort"
)

// Baseline-compare mode: `benchjson -baseline old.json` reads fresh bench
// output from stdin, joins it with a previously recorded BENCH_results.json
// by benchmark name, and prints a per-benchmark ns/op ratio table. A
// benchmark whose (optionally normalized) ratio exceeds the threshold is a
// regression and makes the command exit nonzero, so CI can gate merges on
// the committed baseline.
//
// Because the committed baseline and the CI runner are different machines,
// -normalize divides every ratio by the median ratio first: a uniformly
// slower machine moves every benchmark by the same factor, which the
// median cancels, while a genuine regression stands out against its
// siblings.

// compareRow is one joined benchmark in the comparison table.
type compareRow struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Ratio    float64 // normalized new/old ns/op; >1 is slower than baseline
	RawRatio float64 // ratio before median normalization
}

// comparison is the result of joining fresh results against a baseline.
type comparison struct {
	Rows        []compareRow // joined benchmarks, sorted by name
	OnlyOld     []string     // in baseline but missing from the new run
	OnlyNew     []string     // in the new run but missing from the baseline
	Median      float64      // median raw ratio (1.0 when not normalizing)
	Threshold   float64
	Regressions []compareRow // rows with Ratio > Threshold
}

// gomaxprocsSuffix is the "-8" go test appends to benchmark names when
// GOMAXPROCS > 1. It encodes the machine, not the benchmark, so compare
// joins on suffix-stripped names — a baseline recorded on an N-core box
// still matches a run on an M-core one.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// canonNames rekeys entries by suffix-stripped name.
func canonNames(entries map[string]Entry) map[string]Entry {
	out := make(map[string]Entry, len(entries))
	for name, e := range entries {
		out[gomaxprocsSuffix.ReplaceAllString(name, "")] = e
	}
	return out
}

// compare joins new results against the baseline. When normalize is set,
// each ratio is divided by the median raw ratio across all joined
// benchmarks before the threshold test.
func compare(baseline, fresh map[string]Entry, threshold float64, normalize bool) comparison {
	baseline, fresh = canonNames(baseline), canonNames(fresh)
	c := comparison{Threshold: threshold, Median: 1}
	for name, oldE := range baseline {
		if _, ok := fresh[name]; !ok {
			c.OnlyOld = append(c.OnlyOld, name)
			continue
		}
		newE := fresh[name]
		row := compareRow{Name: name, OldNs: oldE.NsPerOp, NewNs: newE.NsPerOp}
		if oldE.NsPerOp > 0 {
			row.RawRatio = newE.NsPerOp / oldE.NsPerOp
		}
		c.Rows = append(c.Rows, row)
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			c.OnlyNew = append(c.OnlyNew, name)
		}
	}
	sort.Slice(c.Rows, func(i, j int) bool { return c.Rows[i].Name < c.Rows[j].Name })
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)

	if normalize && len(c.Rows) > 0 {
		ratios := make([]float64, 0, len(c.Rows))
		for _, r := range c.Rows {
			if r.RawRatio > 0 {
				ratios = append(ratios, r.RawRatio)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			if n := len(ratios); n%2 == 1 {
				c.Median = ratios[n/2]
			} else {
				c.Median = (ratios[n/2-1] + ratios[n/2]) / 2
			}
		}
	}
	for i := range c.Rows {
		c.Rows[i].Ratio = c.Rows[i].RawRatio / c.Median
		if c.Rows[i].Ratio > threshold {
			c.Regressions = append(c.Regressions, c.Rows[i])
		}
	}
	return c
}

// report prints the comparison table in fixed columns. The flag column
// marks regressions with "!" so they stand out in CI logs.
func report(w io.Writer, c comparison) {
	wide := 0
	for _, r := range c.Rows {
		if len(r.Name) > wide {
			wide = len(r.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %7s\n", wide, "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, r := range c.Rows {
		flag := " "
		if r.Ratio > c.Threshold {
			flag = "!"
		}
		fmt.Fprintf(w, "%-*s  %14.0f  %14.0f  %6.2fx %s\n", wide, r.Name, r.OldNs, r.NewNs, r.Ratio, flag)
	}
	if c.Median != 1 {
		fmt.Fprintf(w, "median raw ratio %.3fx (ratios normalized by it)\n", c.Median)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(w, "missing from new run: %s\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(w, "not in baseline: %s\n", n)
	}
	if len(c.Regressions) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed beyond %.2fx:\n", len(c.Regressions), c.Threshold)
		for _, r := range c.Regressions {
			fmt.Fprintf(w, "  %s: %.2fx\n", r.Name, r.Ratio)
		}
	} else {
		fmt.Fprintf(w, "ok: %d benchmark(s) within %.2fx of baseline\n", len(c.Rows), c.Threshold)
	}
}
