package main

import (
	"strings"
	"testing"
)

func entriesNs(pairs map[string]float64) map[string]Entry {
	out := make(map[string]Entry, len(pairs))
	for name, ns := range pairs {
		out[name] = Entry{Iterations: 1, NsPerOp: ns}
	}
	return out
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := entriesNs(map[string]float64{
		"BenchmarkA-8": 100,
		"BenchmarkB-8": 100,
		"BenchmarkC-8": 100,
	})
	fresh := entriesNs(map[string]float64{
		"BenchmarkA-8": 105, // within threshold
		"BenchmarkB-8": 150, // regressed
		"BenchmarkC-8": 80,  // improved
	})
	c := compare(base, fresh, 1.20, false)
	if len(c.Rows) != 3 {
		t.Fatalf("joined %d rows, want 3", len(c.Rows))
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want only BenchmarkB", c.Regressions)
	}
	if got := c.Regressions[0].Ratio; got != 1.5 {
		t.Errorf("B ratio = %v, want 1.5", got)
	}
}

func TestCompareNameMismatches(t *testing.T) {
	base := entriesNs(map[string]float64{"BenchmarkOld-8": 10, "BenchmarkBoth-8": 10})
	fresh := entriesNs(map[string]float64{"BenchmarkNew-8": 10, "BenchmarkBoth-8": 10})
	c := compare(base, fresh, 1.20, false)
	if len(c.Rows) != 1 || c.Rows[0].Name != "BenchmarkBoth" {
		t.Fatalf("rows = %+v, want only BenchmarkBoth", c.Rows)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkOld" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}
	if len(c.Regressions) != 0 {
		t.Errorf("unexpected regressions: %+v", c.Regressions)
	}
}

// A uniformly slower machine must not trip the normalized compare, while a
// single benchmark that slowed down far beyond its siblings must.
func TestCompareNormalizeCancelsMachineSpeed(t *testing.T) {
	base := entriesNs(map[string]float64{
		"BenchmarkA-8": 100, "BenchmarkB-8": 100, "BenchmarkC-8": 100,
		"BenchmarkD-8": 100, "BenchmarkE-8": 100,
	})
	// Everything 2x slower (slow CI machine)...
	fresh := entriesNs(map[string]float64{
		"BenchmarkA-8": 200, "BenchmarkB-8": 200, "BenchmarkC-8": 200,
		"BenchmarkD-8": 200,
		// ...except E, which regressed 4x on top of that.
		"BenchmarkE-8": 800,
	})
	raw := compare(base, fresh, 1.20, false)
	if len(raw.Regressions) != 5 {
		t.Fatalf("un-normalized: %d regressions, want all 5", len(raw.Regressions))
	}
	norm := compare(base, fresh, 1.20, true)
	if norm.Median != 2 {
		t.Fatalf("median = %v, want 2", norm.Median)
	}
	if len(norm.Regressions) != 1 || norm.Regressions[0].Name != "BenchmarkE" {
		t.Fatalf("normalized regressions = %+v, want only BenchmarkE", norm.Regressions)
	}
	if got := norm.Regressions[0].Ratio; got != 4 {
		t.Errorf("E normalized ratio = %v, want 4", got)
	}
}

func TestReportOutput(t *testing.T) {
	base := entriesNs(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 100})
	fresh := entriesNs(map[string]float64{"BenchmarkA-8": 90, "BenchmarkB-8": 250})
	var sb strings.Builder
	report(&sb, compare(base, fresh, 1.20, false))
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "BenchmarkB", "2.50x !", "FAIL: 1 benchmark(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	var ok strings.Builder
	report(&ok, compare(base, entriesNs(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 101}), 1.20, false))
	if !strings.Contains(ok.String(), "ok: 2 benchmark(s)") {
		t.Errorf("clean report missing ok line:\n%s", ok.String())
	}
}

// A baseline recorded on an 8-core machine must join a run from a 4-core
// one (and one with GOMAXPROCS=1, where go test omits the suffix).
func TestCompareJoinsAcrossGOMAXPROCSSuffixes(t *testing.T) {
	base := entriesNs(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB": 100})
	fresh := entriesNs(map[string]float64{"BenchmarkA-4": 130, "BenchmarkB-2": 100})
	c := compare(base, fresh, 1.20, false)
	if len(c.Rows) != 2 || len(c.OnlyOld) != 0 || len(c.OnlyNew) != 0 {
		t.Fatalf("rows=%+v onlyOld=%v onlyNew=%v, want full join", c.Rows, c.OnlyOld, c.OnlyNew)
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "BenchmarkA" {
		t.Fatalf("regressions = %+v, want only BenchmarkA", c.Regressions)
	}
}
