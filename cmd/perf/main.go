// Command perf reports the dataflow timing and first-order energy of one
// model inference on a systolic array: per-layer tiling factors, cycle
// counts, PE utilization, and the energy split across accumulation,
// weight loading, spike movement, leakage, bypass muxes and the clock
// tree. It also quantifies the cost of mitigating faults by redundant
// re-execution instead of bypass — the overhead argument of the paper's
// introduction.
//
// Usage:
//
//	perf -dataset mnist -array 64 -batch 16
//	perf -dataset dvsgesture -array 256 -rate 0.3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend = flag.String("backend", "", tensor.BackendFlagDoc)
		dataset = flag.String("dataset", "mnist", "mnist | nmnist | dvsgesture")
		arrayN  = flag.Int("array", 64, "array side (NxN)")
		batch   = flag.Int("batch", 16, "inference batch size")
		rate    = flag.Float64("rate", 0, "faulty-PE fraction (bypassed) to include in the report")
		clockMH = flag.Float64("clock-mhz", 500, "array clock for latency conversion")
		seed    = flag.Int64("seed", 7, "seed")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "perf: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(1)
	}
	if err := run(*dataset, *arrayN, *batch, *rate, *clockMH, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(1)
	}
}

func run(dataset string, arrayN, batch int, rate, clockMHz float64, seed int64) error {
	var spec snn.ModelSpec
	switch strings.ToLower(dataset) {
	case "mnist":
		spec = snn.MNISTSpec()
	case "nmnist":
		spec = snn.NMNISTSpec()
	case "dvsgesture":
		spec = snn.DVSGestureSpec()
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	arr, err := systolic.New(systolic.Config{
		Rows: arrayN, Cols: arrayN, Format: fixed.Q16x16, Saturate: true,
	})
	if err != nil {
		return err
	}
	if rate > 0 {
		fm, err := faults.GenerateRate(arrayN, arrayN, rate, faults.GenSpec{
			BitMode: faults.MSBBits, Pol: faults.StuckAt1,
		}, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return err
		}
		if err := arr.InjectFaults(fm); err != nil {
			return err
		}
		arr.SetBypass(true)
		fmt.Printf("fault map: %v (bypass enabled)\n", fm)
	}

	shapes := model.LayerShapes(batch)
	timing, err := arr.ScheduleNetwork(shapes)
	if err != nil {
		return err
	}

	fmt.Printf("model %s on %dx%d array, batch %d, T=%d\n\n", spec.Name, arrayN, arrayN, batch, spec.T)
	fmt.Printf("%-7s %-7s %-7s %-12s %-6s\n", "layer", "Ktiles", "Mtiles", "cycles", "util")
	for _, l := range timing.Layers {
		fmt.Printf("%-7s %-7d %-7d %-12d %5.1f%%\n",
			l.Name, l.KTiles, l.MTiles, l.TotalCycles, 100*l.Utilization)
	}
	usPerInference := float64(timing.TotalCycles) / (clockMHz * 1e6) * 1e6 / float64(batch)
	fmt.Printf("\ntotal: %d cycles, mean utilization %.1f%%, %.1f us/inference at %.0f MHz\n",
		timing.TotalCycles, 100*timing.MeanUtilization, usPerInference, clockMHz)

	// Exercise the datapath once to populate arithmetic stats for the
	// energy estimate (synthetic spikes at a representative density).
	arr.ResetStats()
	rng := rand.New(rand.NewSource(seed + 2))
	const density = 0.15
	for _, sh := range shapes {
		x := make([]float32, sh.B*sh.K)
		for i := range x {
			if rng.Float64() < density {
				x[i] = 1
			}
		}
		w := make([]float32, sh.M*sh.K)
		for i := range w {
			w[i] = float32(rng.NormFloat64() * 0.3)
		}
		xt := tensor.FromSlice(x, sh.B, sh.K)
		wt := tensor.FromSlice(w, sh.M, sh.K)
		for t := 0; t < sh.Timesteps; t++ {
			arr.Forward(xt, systolic.QuantizeMatrix(wt, fixed.Q16x16), true)
		}
	}
	rep := arr.Energy(timing, systolic.DefaultEnergyParams(), density)
	fmt.Printf("\nenergy estimate (batch of %d, spike density %.0f%%):\n", batch, 100*density)
	fmt.Printf("  accumulate  %12.0f pJ\n", rep.AccumulatePJ)
	fmt.Printf("  weight load %12.0f pJ\n", rep.WeightLoadPJ)
	fmt.Printf("  spike move  %12.0f pJ\n", rep.SpikeMovePJ)
	fmt.Printf("  leakage     %12.0f pJ\n", rep.LeakagePJ)
	fmt.Printf("  bypass mux  %12.0f pJ\n", rep.BypassPJ)
	fmt.Printf("  clock tree  %12.0f pJ\n", rep.ClockPJ)
	fmt.Printf("  total       %12.0f pJ (%.2f uJ/inference)\n",
		rep.TotalPJ(), rep.TotalPJ()/1e6/float64(batch))

	lat, en := systolic.ReexecutionOverhead()
	fmt.Printf("\nmitigation-by-re-execution would cost %.2fx latency and %.2fx energy on every inference;\n", lat, en)
	fmt.Println("bypass + FalVolt retraining is a one-time per-chip cost instead (paper §I).")
	return nil
}
