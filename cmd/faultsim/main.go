// Command faultsim explores stuck-at fault vulnerability of a systolicSNN
// without any mitigation: sweep the stuck bit position, the number of
// faulty PEs, or the array size, and report classification accuracy
// (the paper's Fig. 5 family) for one dataset.
//
// Usage:
//
//	faultsim -sweep bits  -dataset mnist
//	faultsim -sweep count -dataset nmnist -array 64
//	faultsim -sweep size  -dataset mnist -faults 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend = flag.String("backend", "", tensor.BackendFlagDoc)
		dataset = flag.String("dataset", "mnist", "mnist | nmnist | dvsgesture")
		sweep   = flag.String("sweep", "bits", "bits | count | size")
		arrayN  = flag.Int("array", 64, "systolic array side for bits/count sweeps")
		nFaults = flag.Int("faults", 16, "faulty PEs for bits/size sweeps")
		repeats = flag.Int("repeats", 3, "fault maps averaged per point")
		baseEp  = flag.Int("base-epochs", 12, "baseline training epochs")
		trainN  = flag.Int("train", 320, "training samples")
		testN   = flag.Int("test", 128, "test samples")
		seed    = flag.Int64("seed", 7, "seed")
	)
	flag.Parse()
	if err := tensor.SetDefaultByName(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
	if err := run(*dataset, *sweep, *arrayN, *nFaults, *repeats, *baseEp, *trainN, *testN, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(dataset, sweep string, arrayN, nFaults, repeats, baseEpochs, trainN, testN int, seed int64) error {
	var spec snn.ModelSpec
	var gen func(datasets.Config) (*datasets.Dataset, error)
	dcfg := datasets.Config{Train: trainN, Test: testN, Seed: seed}
	switch strings.ToLower(dataset) {
	case "mnist":
		spec, gen = snn.MNISTSpec(), datasets.SyntheticMNIST
	case "nmnist":
		spec, gen = snn.NMNISTSpec(), datasets.SyntheticNMNIST
	case "dvsgesture":
		spec, gen = snn.DVSGestureSpec(), datasets.SyntheticDVSGesture
		spec.InH, spec.InW, spec.BlockC = 16, 16, []int{8, 8, 16}
		dcfg.H, dcfg.W = 16, 16
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	spec.EncoderC, spec.FCHidden = 4, 32
	if len(spec.BlockC) == 2 {
		spec.BlockC = []int{8, 8}
	}
	dcfg.T = spec.T

	ds, err := gen(dcfg)
	if err != nil {
		return err
	}
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	fmt.Printf("training %s baseline...\n", dataset)
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, baseEpochs, 0.02,
		rand.New(rand.NewSource(seed+1)), true)
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy %.3f\n\n", baseAcc)

	evalMap := func(arr *systolic.Array, genMap func(rep int) (*faults.Map, error)) (float64, error) {
		var sum float64
		for r := 0; r < repeats; r++ {
			fm, err := genMap(r)
			if err != nil {
				return 0, err
			}
			acc, err := core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
			if err != nil {
				return 0, err
			}
			sum += acc
		}
		return sum / float64(repeats), nil
	}
	newArr := func(side int) (*systolic.Array, error) {
		return systolic.New(systolic.Config{Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true})
	}

	switch strings.ToLower(sweep) {
	case "bits":
		arr, err := newArr(arrayN)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s  %-8s  %-8s\n", "bit", "sa0", "sa1")
		for bit := uint(0); bit <= 16; bit += 2 {
			var accs [2]float64
			for pi, pol := range []faults.Polarity{faults.StuckAt0, faults.StuckAt1} {
				acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
					return faults.Generate(arrayN, arrayN, faults.GenSpec{
						NumFaulty: nFaults, BitMode: faults.FixedBit, Bit: bit, Pol: pol,
					}, rand.New(rand.NewSource(seed+int64(1000*pi)+int64(bit*10)+int64(rep))))
				})
				if err != nil {
					return err
				}
				accs[pi] = acc
			}
			fmt.Printf("%-5d  %-8.3f  %-8.3f\n", bit, accs[0], accs[1])
		}
	case "count":
		arr, err := newArr(arrayN)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %-8s\n", "faulty", "accuracy")
		for _, n := range []int{0, 4, 8, 16, 32, 40, 48, 56, 64} {
			acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
				return faults.Generate(arrayN, arrayN, faults.GenSpec{
					NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rand.New(rand.NewSource(seed+int64(n*10+rep))))
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-8d  %-8.3f\n", n, acc)
		}
	case "size":
		fmt.Printf("%-10s  %-8s\n", "totalPEs", "accuracy")
		for _, side := range []int{4, 8, 16, 32, 256} {
			arr, err := newArr(side)
			if err != nil {
				return err
			}
			acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
				return faults.Generate(side, side, faults.GenSpec{
					NumFaulty: nFaults, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rand.New(rand.NewSource(seed+int64(side*10+rep))))
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-10d  %-8.3f\n", side*side, acc)
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}
	return nil
}
