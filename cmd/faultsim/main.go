// Command faultsim explores fault vulnerability of a systolic SNN
// without any mitigation: sweep the stuck bit position, the number of
// faulty PEs, the array size, or a pluggable fault model's rate ladder,
// and report classification accuracy (the paper's Fig. 5 family) for
// one dataset.
//
// The flags compile into a declarative experiment spec (internal/spec,
// kind "faultsim"): -dump-spec prints it and -spec runs from a spec
// file. Dataset and sweep names are validated before any training
// starts, so a typo fails immediately instead of after the baseline
// epochs.
//
// Usage:
//
//	faultsim -sweep bits  -dataset mnist
//	faultsim -sweep count -dataset nmnist -array 64
//	faultsim -sweep size  -dataset mnist -faults 4
//	faultsim -sweep model -model bitflip -dataset mnist
//
// -mitigate <kind> salvages every deployment before measuring: each
// sweep point injects its fault instance, applies the named mitigation
// strategy (internal/mitigation — falvolt, fap, fapit, respawn,
// rescuesnn or softsnn) to the trained network on the faulty array, and
// reports the salvaged accuracy instead of the raw one. The same sweep
// with and without -mitigate is the per-point recovery picture.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/mitigation"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	// Flag defaults come from the one definition in
	// spec.FaultSimSpec.Defaulted.
	def := spec.FaultSimSpec{}.Defaulted()
	var (
		backend  = flag.String("backend", "", tensor.BackendFlagDoc)
		dataset  = flag.String("dataset", def.Dataset, "mnist | nmnist | dvsgesture")
		sweep    = flag.String("sweep", def.Sweep, "bits | count | size | model")
		modelN   = flag.String("model", "", "fault model for -sweep model: "+strings.Join(faults.ModelNames(), " | "))
		mitigate = flag.String("mitigate", "", "salvage each deployment with this mitigation before measuring: "+strings.Join(spec.MitigationKinds(), " | ")+" (\"\" = unmitigated)")
		mitEp    = flag.Int("mit-epochs", 0, "retraining epochs per salvage for retraining mitigations (0 = 1)")
		arrayN   = flag.Int("array", def.Array, "systolic array side for bits/count sweeps")
		nFaults  = flag.Int("faults", def.Faults, "faulty PEs for bits/size sweeps")
		repeats  = flag.Int("repeats", def.Repeats, "fault maps averaged per point")
		baseEp   = flag.Int("base-epochs", def.BaseEpochs, "baseline training epochs")
		trainN   = flag.Int("train", def.Train, "training samples")
		testN    = flag.Int("test", def.Test, "test samples")
		seed     = flag.Int64("seed", 7, "seed")
		specPath = flag.String("spec", "", "experiment spec JSON file (replaces the config flags; \"-\" reads stdin)")
		dumpSpec = flag.Bool("dump-spec", false, "print the spec compiled from the flags and exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "faultsim: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var s *spec.Spec
	if *specPath != "" {
		loaded, err := spec.LoadOverride(*specPath, *backend)
		if err != nil {
			fail(err)
		}
		if loaded.Kind != "faultsim" || loaded.FaultSim == nil {
			fail(fmt.Errorf("spec kind %q is not a faultsim sweep", loaded.Kind))
		}
		s = loaded
	} else {
		s = &spec.Spec{
			Version: spec.Version, Kind: "faultsim", Seed: *seed, Backend: *backend,
			FaultSim: &spec.FaultSimSpec{
				Dataset: *dataset, Sweep: *sweep, Array: *arrayN, Faults: *nFaults,
				Repeats: *repeats, BaseEpochs: *baseEp, Train: *trainN, Test: *testN,
			},
		}
		if *modelN != "" {
			s.FaultSim.Model = &spec.FaultModelSpec{Kind: *modelN}
		}
		if *mitigate != "" {
			s.FaultSim.Mitigate = &spec.MitigationSpec{Kind: *mitigate, Epochs: *mitEp}
		}
	}
	if *dumpSpec {
		if err := s.Dump(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if err := tensor.SetDefaultByName(s.Backend); err != nil {
		fail(err)
	}
	if err := run(s); err != nil {
		fail(err)
	}
}

func run(s *spec.Spec) error {
	f := s.FaultSim.Defaulted()
	seed := s.Seed
	arrayN, nFaults, repeats := f.Array, f.Faults, f.Repeats
	baseEpochs := f.EffectiveBaseEpochs()
	trainN, testN := f.Train, f.Test
	var bt spec.TrainSpec
	if f.Training != nil {
		bt = *f.Training
	}
	baseLoss, err := snn.LossByName(bt.Loss)
	if err != nil {
		return err
	}
	baseLR := bt.LR
	if baseLR == 0 {
		baseLR = 0.02
	}

	// Validate every user-named knob before the (expensive) baseline
	// training, so misconfiguration fails in milliseconds.
	sweep := strings.ToLower(f.Sweep)
	switch sweep {
	case "bits", "count", "size", "model":
	default:
		return fmt.Errorf("unknown sweep %q (want bits | count | size | model)", f.Sweep)
	}
	var fmodel faults.FaultModel
	if sweep == "model" {
		mspec := f.Model
		if mspec == nil {
			mspec = &spec.FaultModelSpec{}
		}
		if err := mspec.Validate(); err != nil {
			return err
		}
		var err error
		if fmodel, err = mspec.FaultModel(); err != nil {
			return err
		}
	}
	mitSpec := f.Mitigate
	if mitSpec != nil {
		if err := mitSpec.Validate(); err != nil {
			return err
		}
	}
	var mspec snn.ModelSpec
	var gen func(datasets.Config) (*datasets.Dataset, error)
	dcfg := datasets.Config{Train: trainN, Test: testN, Seed: seed}
	dsName := strings.ToLower(f.Dataset)
	switch dsName {
	case "mnist":
		mspec, gen = snn.MNISTSpec(), datasets.SyntheticMNIST
	case "nmnist":
		mspec, gen = snn.NMNISTSpec(), datasets.SyntheticNMNIST
	case "dvsgesture":
		mspec, gen = snn.DVSGestureSpec(), datasets.SyntheticDVSGesture
		mspec.InH, mspec.InW, mspec.BlockC = 16, 16, []int{8, 8, 16}
		dcfg.H, dcfg.W = 16, 16
	default:
		return fmt.Errorf("unknown dataset %q", f.Dataset)
	}
	mspec.EncoderC, mspec.FCHidden = 4, 32
	if len(mspec.BlockC) == 2 {
		mspec.BlockC = []int{8, 8}
	}
	dcfg.T = mspec.T

	ds, err := gen(dcfg)
	if err != nil {
		return err
	}
	model, err := snn.Build(mspec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	fmt.Printf("training %s baseline...\n", dsName)
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: baseEpochs, LR: baseLR, BatchSize: bt.Batch, ClipNorm: bt.ClipNorm,
		Loss: baseLoss, Rng: rand.New(rand.NewSource(seed + 1)),
		Replicas: bt.Replicas, MicroBatch: bt.MicroBatch,
	})
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy %.3f\n", baseAcc)
	if mitSpec != nil {
		fmt.Printf("mitigating every deployment with %s\n", mitSpec.EffectiveKind())
	}
	fmt.Println()

	// Fault-free snapshot: each salvaged measurement restores it before
	// the strategy (possibly) retrains, so sweep points stay independent.
	base := model.Net.State()
	var mitTrial int64
	salvaged := func(arr *systolic.Array, inject func() error) (float64, error) {
		net := model.Net
		net.Undeploy()
		if err := net.LoadState(base); err != nil {
			return 0, err
		}
		arr.ClearFaults()
		arr.SetBypass(false)
		if err := inject(); err != nil {
			return 0, err
		}
		epochs := mitSpec.EffectiveEpochs()
		if epochs == 0 {
			epochs = 1
		}
		mt := mitSpec.TrainingOrZero()
		batch, clip := mt.Batch, mt.ClipNorm
		if batch == 0 {
			batch = 16
		}
		// clipNorm 0 always means the paper's clip of 5 (the same
		// sentinel as core.BaselineConfig): gradient clipping cannot be
		// disabled from a spec, only retuned.
		if clip == 0 {
			clip = 5
		}
		mitTrial++
		mit, err := mitigation.New(mitSpec.EffectiveKind(), mitigation.Options{
			Train: ds.Train, Test: ds.Test, Epochs: epochs, BatchSize: batch,
			LR: mitSpec.EffectiveLR(), ClipNorm: clip, FixedVth: mitSpec.Vth,
			Rng:        rand.New(rand.NewSource(seed + 7919*mitTrial)),
			BypassBit:  mitSpec.BypassBit,
			Replicas:   mt.Replicas,
			MicroBatch: mt.MicroBatch,
		})
		if err != nil {
			return 0, err
		}
		if _, err := mit.Apply(model, arr, arr.FaultMap()); err != nil {
			return 0, err
		}
		acc := snn.EvaluateWith(nil, net, ds.Test, 32)
		net.Undeploy()
		arr.ClearFaults()
		arr.SetBypass(false)
		return acc, nil
	}
	evalMap := func(arr *systolic.Array, genMap func(rep int) (*faults.Map, error)) (float64, error) {
		var sum float64
		for r := 0; r < repeats; r++ {
			fm, err := genMap(r)
			if err != nil {
				return 0, err
			}
			var acc float64
			if mitSpec != nil {
				acc, err = salvaged(arr, func() error { return arr.InjectFaults(fm) })
			} else {
				acc, err = core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
			}
			if err != nil {
				return 0, err
			}
			sum += acc
		}
		return sum / float64(repeats), nil
	}
	newArr := func(side int) (*systolic.Array, error) {
		return systolic.New(systolic.Config{Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true})
	}

	switch sweep {
	case "bits":
		arr, err := newArr(arrayN)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s  %-8s  %-8s\n", "bit", "sa0", "sa1")
		for bit := uint(0); bit <= 16; bit += 2 {
			var accs [2]float64
			for pi, pol := range []faults.Polarity{faults.StuckAt0, faults.StuckAt1} {
				acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
					return faults.Generate(arrayN, arrayN, faults.GenSpec{
						NumFaulty: nFaults, BitMode: faults.FixedBit, Bit: bit, Pol: pol,
					}, rand.New(rand.NewSource(seed+int64(1000*pi)+int64(bit*10)+int64(rep))))
				})
				if err != nil {
					return err
				}
				accs[pi] = acc
			}
			fmt.Printf("%-5d  %-8.3f  %-8.3f\n", bit, accs[0], accs[1])
		}
	case "count":
		arr, err := newArr(arrayN)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %-8s\n", "faulty", "accuracy")
		for _, n := range []int{0, 4, 8, 16, 32, 40, 48, 56, 64} {
			acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
				return faults.Generate(arrayN, arrayN, faults.GenSpec{
					NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rand.New(rand.NewSource(seed+int64(n*10+rep))))
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-8d  %-8.3f\n", n, acc)
		}
	case "size":
		fmt.Printf("%-10s  %-8s\n", "totalPEs", "accuracy")
		for _, side := range []int{4, 8, 16, 32, 256} {
			arr, err := newArr(side)
			if err != nil {
				return err
			}
			acc, err := evalMap(arr, func(rep int) (*faults.Map, error) {
				return faults.Generate(side, side, faults.GenSpec{
					NumFaulty: nFaults, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
				}, rand.New(rand.NewSource(seed+int64(side*10+rep))))
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-10d  %-8.3f\n", side*side, acc)
		}
	case "model":
		arr, err := newArr(arrayN)
		if err != nil {
			return err
		}
		fmt.Printf("model %s\n", fmodel.Name())
		fmt.Printf("%-10s  %-8s\n", "rate", "accuracy")
		for _, rate := range spec.DefaultFaultModelRates() {
			var sum float64
			for r := 0; r < repeats; r++ {
				mseed := seed + int64(1e6*rate) + int64(r)
				var acc float64
				var err error
				if mitSpec != nil {
					acc, err = salvaged(arr, func() error { return fmodel.Inject(arr, rate, mseed) })
				} else {
					acc, err = core.EvaluateModelFaulty(model, arr, fmodel, rate, mseed, ds.Test, core.EvalOptions{BatchSize: 32})
				}
				if err != nil {
					return err
				}
				sum += acc
			}
			fmt.Printf("%-10g  %-8.3f\n", rate, sum/float64(repeats))
		}
	}
	return nil
}
