// Command experiments regenerates every figure of the paper's evaluation
// (Fig. 2, 5a–c, 6, 7, 8 and the §V-A baselines) on the synthetic-dataset
// reproduction, printing each figure's data series as a table.
//
// The figure sweeps run as campaigns (internal/campaign): -checkpoint
// makes them resumable, and -shard splits one campaign across processes
// whose partial JSONL files merge bit-identically with `campaign merge`.
// -coordinator serves each selected campaign to remote worker daemons
// (`campaign work -c <campaign>` with matching flags) instead of
// running trials locally.
//
// Usage:
//
//	experiments -quick                 # reduced sizes, minutes on a laptop
//	experiments -fig 5b,7              # subset of figures
//	experiments -cache .cache          # reuse trained baselines across runs
//	experiments -quick -fig 5a -shard 0/2 -checkpoint out/   # half the sweep
//	experiments -quick -fig 5a -shard 1/2 -checkpoint out/   # other half
//	campaign merge out/fig5a-shard*.jsonl                    # assembled figure
//
//	experiments -quick -fig 5a -coordinator :9090            # distributed
//	campaign work -c fig5a -quick -coordinator http://host:9090   # each worker
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/experiments"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend  = flag.String("backend", "", tensor.BackendFlagDoc)
		quick    = flag.Bool("quick", false, "reduced model/dataset sizes")
		figs     = flag.String("fig", "all", "comma-separated figures: baseline,2,5a,5b,5c,6,7,8,ablations or all (ablations excluded from all)")
		cache    = flag.String("cache", "", "directory for baseline snapshots (reused across runs)")
		seed     = flag.Int64("seed", 7, "experiment seed")
		arrayN   = flag.Int("array", 64, "systolic array side (NxN)")
		epochs   = flag.Int("epochs", 0, "retraining epochs (0 = default for mode)")
		repeats  = flag.Int("repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
		evalN    = flag.Int("eval", 0, "test samples per deployed evaluation (0 = default)")
		verbose  = flag.Bool("v", false, "progress logging")
		shardArg = flag.String("shard", "", "run the i-th of n interleaved trial subsets of each figure campaign (i/n)")
		ckptDir  = flag.String("checkpoint", "", "directory for per-campaign JSONL checkpoints (resume + shard partials)")
		coordArg = flag.String("coordinator", "", "serve each selected campaign to remote workers on this listen address (host:port); workers run `campaign work -c <campaign>` with matching flags")
	)
	flag.Parse()

	fail := func(context string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", context, err)
		os.Exit(1)
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if !shard.IsWhole() && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -shard needs -checkpoint so the partial results can be merged")
		os.Exit(1)
	}
	if *coordArg != "" && !shard.IsWhole() {
		fmt.Fprintln(os.Stderr, "experiments: -coordinator shards each campaign itself; drop -shard")
		os.Exit(1)
	}
	if strings.Contains(*coordArg, "://") {
		fmt.Fprintf(os.Stderr, "experiments: -coordinator here is a listen address (host:port), got URL %q; the URL form belongs on `campaign work -coordinator`\n", *coordArg)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.Seed = *seed
	opt.ArrayRows, opt.ArrayCols = *arrayN, *arrayN
	opt.CacheDir = *cache
	if *epochs > 0 {
		opt.RetrainEpochs = *epochs
	}
	if *repeats > 0 {
		opt.Repeats = *repeats
	}
	if *evalN > 0 {
		opt.EvalSamples = *evalN
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	suite := experiments.NewSuite(opt)

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	// figCampaigns maps -fig names to their backing campaigns ("" = not
	// campaign-backed). Fig. 6/7/8 share the "mitigation" study.
	figCampaigns := []struct{ fig, camp string }{
		{"2", "fig2"}, {"5a", "fig5a"}, {"5b", "fig5b"}, {"5c", "fig5c"},
		{"6", "mitigation"}, {"7", "mitigation"}, {"8", "mitigation"},
	}

	shardFile := func(name string) string {
		return filepath.Join(*ckptDir,
			fmt.Sprintf("%s-shard%dof%d.jsonl", name, shard.Index, max(shard.Count, 1)))
	}
	// runCampaign executes one campaign with the shard/checkpoint
	// options — on remote workers when -coordinator is set — and
	// returns its results when the shard is complete.
	runCampaign := func(name string) (*campaign.RunResult, error) {
		copt := campaign.Options{Context: ctx, Shard: shard}
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				return nil, err
			}
			copt.Checkpoint = shardFile(name)
		}
		if *coordArg != "" {
			// One single-use coordinator per campaign; sequential
			// campaigns reuse the same listen address.
			copt.Runner = cluster.NewCoordinator(cluster.CoordinatorConfig{
				Addr: *coordArg, Log: os.Stderr,
			})
		}
		if *verbose {
			copt.Log = os.Stderr
		}
		return suite.RunCampaign(name, copt)
	}

	if !shard.IsWhole() {
		// Shard mode: execute the selected campaigns' subsets and leave
		// figure assembly to `campaign merge` over all shard files.
		ran := map[string]bool{}
		for _, fc := range figCampaigns {
			if !selected(fc.fig) || ran[fc.camp] {
				continue
			}
			ran[fc.camp] = true
			rr, err := runCampaign(fc.camp)
			if err != nil {
				fail(fc.camp, err)
			}
			fmt.Printf("campaign %s shard %s: %d/%d trials complete -> %s\n",
				fc.camp, shard, len(rr.Results), rr.Planned, shardFile(fc.camp))
		}
		if selected("baseline") || want["ablations"] {
			fmt.Fprintln(os.Stderr, "experiments: baseline/ablations are not sharded; run them without -shard")
		}
		return
	}

	run := func(name string, fn func() error) {
		if !selected(name) {
			return
		}
		if err := fn(); err != nil {
			fail(name, err)
		}
	}
	// printCampaign runs a campaign-backed figure with checkpointing and
	// prints its figures (used when -checkpoint is set; otherwise the
	// plain Fig* methods below run the campaign in memory).
	printCampaign := func(camp string) error {
		rr, err := runCampaign(camp)
		if err != nil {
			return err
		}
		figs, err := suite.Figures(camp, rr.Results)
		if err != nil {
			return err
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
		return nil
	}

	run("baseline", func() error {
		fig, err := suite.Baselines()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	if *ckptDir != "" || *coordArg != "" {
		// Checkpointed or distributed whole-campaign mode: run each
		// selected campaign (with resume, and/or on remote workers) and
		// print its figures. Fig. 6/7/8 print together.
		ran := map[string]bool{}
		for _, fc := range figCampaigns {
			if !selected(fc.fig) || ran[fc.camp] {
				continue
			}
			ran[fc.camp] = true
			if err := printCampaign(fc.camp); err != nil {
				fail(fc.camp, err)
			}
		}
	} else {
		run("2", func() error { return printFig(suite.Fig2()) })
		run("5a", func() error { return printFig(suite.Fig5a()) })
		run("5b", func() error { return printFig(suite.Fig5b()) })
		run("5c", func() error { return printFig(suite.Fig5c()) })
		run("6", func() error { return printFigs(suite.Fig6()) })
		run("7", func() error { return printFig(suite.Fig7()) })
		run("8", func() error { return printFigs(suite.Fig8()) })
	}
	// Ablations are opt-in only (not part of "all").
	if want["ablations"] {
		figs, err := suite.Ablations()
		if err != nil {
			fail("ablations", err)
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
	}
}

func printFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	f.Print(os.Stdout)
	return nil
}

func printFigs(figs []*experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	return nil
}
