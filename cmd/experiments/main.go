// Command experiments regenerates every figure of the paper's evaluation
// (Fig. 2, 5a–c, 6, 7, 8 and the §V-A baselines) on the synthetic-dataset
// reproduction, printing each figure's data series as a table.
//
// Usage:
//
//	experiments -quick                 # reduced sizes, minutes on a laptop
//	experiments -fig 5b,7              # subset of figures
//	experiments -cache .cache          # reuse trained baselines across runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falvolt/internal/experiments"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend = flag.String("backend", "", tensor.BackendFlagDoc)
		quick   = flag.Bool("quick", false, "reduced model/dataset sizes")
		figs    = flag.String("fig", "all", "comma-separated figures: baseline,2,5a,5b,5c,6,7,8,ablations or all (ablations excluded from all)")
		cache   = flag.String("cache", "", "directory for baseline snapshots (reused across runs)")
		seed    = flag.Int64("seed", 7, "experiment seed")
		arrayN  = flag.Int("array", 64, "systolic array side (NxN)")
		epochs  = flag.Int("epochs", 0, "retraining epochs (0 = default for mode)")
		repeats = flag.Int("repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
		evalN   = flag.Int("eval", 0, "test samples per deployed evaluation (0 = default)")
		verbose = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	if err := tensor.SetDefaultByName(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.Seed = *seed
	opt.ArrayRows, opt.ArrayCols = *arrayN, *arrayN
	opt.CacheDir = *cache
	if *epochs > 0 {
		opt.RetrainEpochs = *epochs
	}
	if *repeats > 0 {
		opt.Repeats = *repeats
	}
	if *evalN > 0 {
		opt.EvalSamples = *evalN
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	suite := experiments.NewSuite(opt)

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("baseline", func() error {
		fig, err := suite.Baselines()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("2", func() error {
		fig, err := suite.Fig2()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("5a", func() error {
		fig, err := suite.Fig5a()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("5b", func() error {
		fig, err := suite.Fig5b()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("5c", func() error {
		fig, err := suite.Fig5c()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("6", func() error {
		figs, err := suite.Fig6()
		if err != nil {
			return err
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
		return nil
	})
	run("7", func() error {
		fig, err := suite.Fig7()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	run("8", func() error {
		figs, err := suite.Fig8()
		if err != nil {
			return err
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
		return nil
	})
	// Ablations are opt-in only (not part of "all").
	if want["ablations"] {
		figs, err := suite.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: ablations: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
	}
}
