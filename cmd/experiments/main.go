// Command experiments regenerates every figure of the paper's evaluation
// (Fig. 2, 5a–c, 6, 7, 8 and the §V-A baselines) on the synthetic-dataset
// reproduction, printing each figure's data series as a table.
//
// The flags compile into declarative experiment specs (internal/spec),
// one per selected figure campaign: -dump-spec prints the spec of a
// single selected campaign, and -spec runs from a spec file. Because
// every tool and cluster worker builds campaigns through the same spec
// registry, a figure launched here, resumed by cmd/campaign, and
// finished by remote workers is one and the same campaign.
//
// The figure sweeps run as campaigns (internal/campaign): -checkpoint
// makes them resumable, and -shard splits one campaign across processes
// whose partial JSONL files merge bit-identically with `campaign merge`.
// -coordinator serves each selected campaign to remote spec-free worker
// daemons (`campaign work -coordinator <url>`) instead of running
// trials locally.
//
// Usage:
//
//	experiments -quick                 # reduced sizes, minutes on a laptop
//	experiments -fig 5b,7              # subset of figures
//	experiments -cache .cache          # reuse trained baselines across runs
//	experiments -quick -fig 5a -shard 0/2 -checkpoint out/   # half the sweep
//	experiments -quick -fig 5a -shard 1/2 -checkpoint out/   # other half
//	campaign merge out/fig5a-shard*.jsonl                    # assembled figure
//
//	experiments -quick -fig 5a -coordinator :9090            # distributed
//	campaign work -coordinator http://host:9090              # each worker
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/experiments"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend  = flag.String("backend", "", tensor.BackendFlagDoc)
		quick    = flag.Bool("quick", false, "reduced model/dataset sizes")
		figs     = flag.String("fig", "all", "comma-separated figures: baseline,2,5a,5b,5c,6,7,8,ablations or all (ablations excluded from all)")
		cache    = flag.String("cache", "", "directory for baseline snapshots (reused across runs)")
		seed     = flag.Int64("seed", 7, "experiment seed")
		arrayN   = flag.Int("array", 64, "systolic array side (NxN)")
		epochs   = flag.Int("epochs", 0, "retraining epochs (0 = default for mode)")
		repeats  = flag.Int("repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
		evalN    = flag.Int("eval", 0, "test samples per deployed evaluation (0 = default)")
		verbose  = flag.Bool("v", false, "progress logging")
		specPath = flag.String("spec", "", "experiment spec JSON file (replaces the config flags and selects its kind's figure; \"-\" reads stdin)")
		dumpSpec = flag.Bool("dump-spec", false, "print the spec of the single selected campaign and exit")
		shardArg = flag.String("shard", "", "run the i-th of n interleaved trial subsets of each figure campaign (i/n)")
		ckptDir  = flag.String("checkpoint", "", "directory for per-campaign JSONL checkpoints (resume + shard partials)")
		coordArg = flag.String("coordinator", "", "serve each selected campaign to remote spec-free workers on this listen address (host:port); workers run `campaign work -coordinator <url>`")
	)
	flag.Parse()

	fail := func(context string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", context, err)
		os.Exit(1)
	}
	failTop := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	// figCampaigns maps -fig names to their backing campaigns ("" = not
	// campaign-backed). Fig. 6/7/8 share the "mitigation" study.
	figCampaigns := []struct{ fig, camp string }{
		{"2", "fig2"}, {"5a", "fig5a"}, {"5b", "fig5b"}, {"5c", "fig5c"},
		{"6", "mitigation"}, {"7", "mitigation"}, {"8", "mitigation"},
	}

	// base is the suite configuration every selected campaign shares;
	// specFor stamps a campaign kind onto it.
	base := &spec.Spec{
		Version: spec.Version, Seed: *seed, Backend: *backend,
		Suite: &spec.SuiteSpec{
			Quick: *quick, Array: *arrayN, Epochs: *epochs,
			Repeats: *repeats, Eval: *evalN,
		},
	}
	if *specPath != "" {
		loaded, err := spec.LoadOverride(*specPath, *backend)
		if err != nil {
			failTop(err)
		}
		if loaded.Suite == nil {
			failTop(fmt.Errorf("spec kind %q carries no suite section; run it with its own tool", loaded.Kind))
		}
		base = loaded
		// A spec names one campaign; narrow the selection to its figures.
		want = map[string]bool{}
		all = false
		for _, fc := range figCampaigns {
			if fc.camp == loaded.Kind {
				want[fc.fig] = true
			}
		}
		if len(want) == 0 {
			failTop(fmt.Errorf("spec kind %q is not a figure campaign", loaded.Kind))
		}
	}
	specFor := func(camp string) *spec.Spec {
		s := *base
		s.Kind = camp
		return &s
	}

	if *dumpSpec {
		// Dumping needs exactly one campaign: -fig 5a (or a loaded spec).
		var camps []string
		seen := map[string]bool{}
		for _, fc := range figCampaigns {
			if selected(fc.fig) && !seen[fc.camp] {
				seen[fc.camp] = true
				camps = append(camps, fc.camp)
			}
		}
		if len(camps) != 1 {
			failTop(fmt.Errorf("-dump-spec needs -fig naming exactly one campaign-backed figure (got %d campaigns)", len(camps)))
		}
		if err := specFor(camps[0]).Dump(os.Stdout); err != nil {
			failTop(err)
		}
		return
	}

	if err := tensor.SetDefaultByName(base.Backend); err != nil {
		failTop(err)
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		failTop(err)
	}
	if shard.IsWhole() && base.Shard != "" {
		if shard, err = campaign.ParseShard(base.Shard); err != nil {
			failTop(err)
		}
	}
	if !shard.IsWhole() && *ckptDir == "" {
		failTop(fmt.Errorf("-shard needs -checkpoint so the partial results can be merged"))
	}
	if *coordArg != "" && !shard.IsWhole() {
		failTop(fmt.Errorf("-coordinator shards each campaign itself; drop -shard"))
	}
	if strings.Contains(*coordArg, "://") {
		failTop(fmt.Errorf("-coordinator here is a listen address (host:port), got URL %q; the URL form belongs on `campaign work -coordinator`", *coordArg))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bopt := spec.BuildOpts{CacheDir: *cache}
	if *verbose {
		bopt.Log = os.Stderr
	}
	// The suite behind the campaigns: SuiteFromSpec caches per
	// configuration, so the registry builders below and the direct
	// baseline/ablation harnesses share one set of trained baselines.
	suite, err := experiments.SuiteFromSpec(base, bopt)
	if err != nil {
		failTop(err)
	}

	shardFile := func(name string) string {
		return filepath.Join(*ckptDir,
			fmt.Sprintf("%s-shard%dof%d.jsonl", name, shard.Index, max(shard.Count, 1)))
	}
	// runCampaign builds the named campaign from its spec and executes
	// it with the shard/checkpoint options — on remote workers when
	// -coordinator is set — returning the built renderers alongside.
	runCampaign := func(name string) (*spec.Built, *campaign.RunResult, error) {
		s := specFor(name)
		built, err := spec.Build(s, bopt)
		if err != nil {
			return nil, nil, err
		}
		copt := campaign.Options{Context: ctx, Shard: shard}
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				return nil, nil, err
			}
			copt.Checkpoint = shardFile(name)
		}
		if *coordArg != "" {
			// One single-use coordinator per campaign; sequential
			// campaigns reuse the same listen address.
			copt.Runner = cluster.NewCoordinator(cluster.CoordinatorConfig{
				Addr: *coordArg, Spec: s, Log: os.Stderr,
			})
		}
		if *verbose {
			copt.Log = os.Stderr
		}
		rr, err := campaign.Run(built.Campaign, copt)
		return built, rr, err
	}

	if !shard.IsWhole() {
		// Shard mode: execute the selected campaigns' subsets and leave
		// figure assembly to `campaign merge` over all shard files.
		ran := map[string]bool{}
		for _, fc := range figCampaigns {
			if !selected(fc.fig) || ran[fc.camp] {
				continue
			}
			ran[fc.camp] = true
			_, rr, err := runCampaign(fc.camp)
			if err != nil {
				fail(fc.camp, err)
			}
			fmt.Printf("campaign %s shard %s: %d/%d trials complete -> %s\n",
				fc.camp, shard, len(rr.Results), rr.Planned, shardFile(fc.camp))
		}
		if selected("baseline") || want["ablations"] {
			fmt.Fprintln(os.Stderr, "experiments: baseline/ablations are not sharded; run them without -shard")
		}
		return
	}

	run := func(name string, fn func() error) {
		if !selected(name) {
			return
		}
		if err := fn(); err != nil {
			fail(name, err)
		}
	}
	// printCampaign runs a campaign-backed figure with checkpointing and
	// prints its figures (used when -checkpoint is set; otherwise the
	// plain Fig* methods below run the campaign in memory).
	printCampaign := func(camp string) error {
		built, rr, err := runCampaign(camp)
		if err != nil {
			return err
		}
		return built.Render(os.Stdout, rr.Results)
	}

	run("baseline", func() error {
		fig, err := suite.Baselines()
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		return nil
	})
	if *ckptDir != "" || *coordArg != "" {
		// Checkpointed or distributed whole-campaign mode: run each
		// selected campaign (with resume, and/or on remote workers) and
		// print its figures. Fig. 6/7/8 print together.
		ran := map[string]bool{}
		for _, fc := range figCampaigns {
			if !selected(fc.fig) || ran[fc.camp] {
				continue
			}
			ran[fc.camp] = true
			if err := printCampaign(fc.camp); err != nil {
				fail(fc.camp, err)
			}
		}
	} else {
		run("2", func() error { return printFig(suite.Fig2()) })
		run("5a", func() error { return printFig(suite.Fig5a()) })
		run("5b", func() error { return printFig(suite.Fig5b()) })
		run("5c", func() error { return printFig(suite.Fig5c()) })
		run("6", func() error { return printFigs(suite.Fig6()) })
		run("7", func() error { return printFig(suite.Fig7()) })
		run("8", func() error { return printFigs(suite.Fig8()) })
	}
	// Ablations are opt-in only (not part of "all").
	if want["ablations"] {
		figs, err := suite.Ablations()
		if err != nil {
			fail("ablations", err)
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
	}
}

func printFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	f.Print(os.Stdout)
	return nil
}

func printFigs(figs []*experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	return nil
}
