// Command falvolt runs the full FalVolt pipeline end to end on one
// dataset: train a fault-free baseline PLIF-SNN, inject a stuck-at fault
// map into the systolic array, then mitigate with FaP, FaPIT or FalVolt
// and report the recovered accuracy and the optimized per-layer threshold
// voltages.
//
// The flags compile into a declarative experiment spec (internal/spec,
// kind "falvolt"): -dump-spec prints it and -spec runs from a spec
// file, so a pipeline configuration is a reviewable JSON artifact like
// every campaign's.
//
// Usage:
//
//	falvolt -dataset mnist -rate 0.30 -method falvolt
//	falvolt -dataset dvsgesture -rate 0.60 -method fapit -epochs 10
//	falvolt -dataset mnist -dump-spec > run.json && falvolt -spec run.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	// Numeric/string flag defaults come from the one definition in
	// spec.PipelineSpec.Defaulted; -rate and -quick keep tool-level
	// defaults (their spec fields are literal — see internal/spec).
	def := spec.PipelineSpec{}.Defaulted()
	var (
		backend   = flag.String("backend", "", tensor.BackendFlagDoc)
		dataset   = flag.String("dataset", def.Dataset, "mnist | nmnist | dvsgesture")
		rate      = flag.Float64("rate", 0.30, "fraction of faulty PEs")
		method    = flag.String("method", def.Method, "fap | fapit | falvolt")
		arrayN    = flag.Int("array", def.Array, "systolic array side (NxN)")
		baseEp    = flag.Int("base-epochs", def.BaseEpochs, "baseline training epochs")
		epochs    = flag.Int("epochs", def.Epochs, "mitigation retraining epochs")
		trainN    = flag.Int("train", def.Train, "training samples")
		testN     = flag.Int("test", def.Test, "test samples")
		seed      = flag.Int64("seed", 7, "seed")
		specPath  = flag.String("spec", "", "experiment spec JSON file (replaces the config flags; \"-\" reads stdin)")
		dumpSpec  = flag.Bool("dump-spec", false, "print the spec compiled from the flags and exit")
		stateOut  = flag.String("save", "", "save mitigated network state to file")
		showVths  = flag.Bool("vths", true, "print optimized threshold voltages")
		quickMode = flag.Bool("quick", true, "reduced model sizes")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "falvolt:", err)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "falvolt: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var s *spec.Spec
	if *specPath != "" {
		loaded, err := spec.LoadOverride(*specPath, *backend)
		if err != nil {
			fail(err)
		}
		if loaded.Kind != "falvolt" || loaded.Pipeline == nil {
			fail(fmt.Errorf("spec kind %q is not a falvolt pipeline", loaded.Kind))
		}
		s = loaded
	} else {
		s = &spec.Spec{
			Version: spec.Version, Kind: "falvolt", Seed: *seed, Backend: *backend,
			Pipeline: &spec.PipelineSpec{
				Dataset: *dataset, Rate: *rate, Method: *method, Array: *arrayN,
				BaseEpochs: *baseEp, Epochs: *epochs, Train: *trainN, Test: *testN,
				Quick: *quickMode,
			},
		}
	}
	if *dumpSpec {
		if err := s.Dump(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if err := tensor.SetDefaultByName(s.Backend); err != nil {
		fail(err)
	}
	if err := run(s, *stateOut, *showVths); err != nil {
		fail(err)
	}
}

func run(s *spec.Spec, stateOut string, showVths bool) error {
	p := s.Pipeline.Defaulted()
	seed := s.Seed
	arrayN, baseEpochs, epochs := p.Array, p.BaseEpochs, p.Epochs
	trainN, testN := p.Train, p.Test

	// Everything user-named is validated before any training happens, so
	// a typo fails in milliseconds, not after the baseline epoch loop.
	var mspec snn.ModelSpec
	var gen func(datasets.Config) (*datasets.Dataset, error)
	dcfg := datasets.Config{Train: trainN, Test: testN, Seed: seed}
	dsName := strings.ToLower(p.Dataset)
	switch dsName {
	case "mnist":
		mspec, gen = snn.MNISTSpec(), datasets.SyntheticMNIST
		dcfg.T = mspec.T
	case "nmnist":
		mspec, gen = snn.NMNISTSpec(), datasets.SyntheticNMNIST
		dcfg.T = mspec.T
	case "dvsgesture":
		mspec, gen = snn.DVSGestureSpec(), datasets.SyntheticDVSGesture
		dcfg.H, dcfg.W, dcfg.T = mspec.InH, mspec.InW, mspec.T
	default:
		return fmt.Errorf("unknown dataset %q", p.Dataset)
	}
	method, err := core.ParseMethod(p.Method)
	if err != nil {
		return err
	}
	if p.Quick {
		mspec.EncoderC = 4
		if len(mspec.BlockC) > 2 {
			mspec.InH, mspec.InW = 16, 16
			mspec.BlockC = []int{8, 8, 16}
			dcfg.H, dcfg.W = 16, 16
		} else {
			mspec.BlockC = []int{8, 8}
		}
		mspec.FCHidden = 32
	}

	fmt.Printf("dataset %s | model %s | array %dx%d | fault rate %.0f%% | method %s\n",
		dsName, mspec.Name, arrayN, arrayN, p.Rate*100, method)

	ds, err := gen(dcfg)
	if err != nil {
		return err
	}
	model, err := snn.Build(mspec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	fmt.Printf("training baseline (%d samples, %d epochs)...\n", len(ds.Train), baseEpochs)
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: baseEpochs, LR: 0.02, Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy: %.3f\n", baseAcc)

	arr, err := systolic.New(systolic.Config{
		Rows: arrayN, Cols: arrayN, Format: fixed.Q16x16, Saturate: true,
	})
	if err != nil {
		return err
	}
	fm, err := faults.GenerateRate(arrayN, arrayN, p.Rate, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return err
	}
	fmt.Println(fm)

	faultyAcc, err := core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy with unmitigated faults: %.3f\n", faultyAcc)

	rep, err := core.Mitigate(model, arr, fm, ds.Train, ds.Test, core.Config{
		Method: method, Epochs: epochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		Rng: rand.New(rand.NewSource(seed + 3)),
		Progress: func(epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %2d loss %.4f\n", method, epoch, loss)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("after %s: accuracy %.3f (pruned %.1f%% of weights, retrain %.1fs)\n",
		method, rep.Accuracy, rep.PrunedFraction*100, rep.RetrainDuration.Seconds())
	if showVths {
		fmt.Println("per-layer threshold voltages:")
		for i, name := range model.SpikingNames {
			fmt.Printf("  %-7s Vth = %.3f\n", name, rep.Vths[i])
		}
	}
	if stateOut != "" {
		if err := snn.SaveStateFile(model.Net.State(), stateOut); err != nil {
			return err
		}
		fmt.Println("saved mitigated network state to", stateOut)
	}
	return nil
}
