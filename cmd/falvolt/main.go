// Command falvolt runs the full FalVolt pipeline end to end on one
// dataset: train a fault-free baseline PLIF-SNN, inject a stuck-at fault
// map into the systolic array, then mitigate with FaP, FaPIT or FalVolt
// and report the recovered accuracy and the optimized per-layer threshold
// voltages.
//
// Usage:
//
//	falvolt -dataset mnist -rate 0.30 -method falvolt
//	falvolt -dataset dvsgesture -rate 0.60 -method fapit -epochs 10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	var (
		backend   = flag.String("backend", "", tensor.BackendFlagDoc)
		dataset   = flag.String("dataset", "mnist", "mnist | nmnist | dvsgesture")
		rate      = flag.Float64("rate", 0.30, "fraction of faulty PEs")
		method    = flag.String("method", "falvolt", "fap | fapit | falvolt")
		arrayN    = flag.Int("array", 64, "systolic array side (NxN)")
		baseEp    = flag.Int("base-epochs", 12, "baseline training epochs")
		epochs    = flag.Int("epochs", 8, "mitigation retraining epochs")
		trainN    = flag.Int("train", 320, "training samples")
		testN     = flag.Int("test", 128, "test samples")
		seed      = flag.Int64("seed", 7, "seed")
		stateOut  = flag.String("save", "", "save mitigated network state to file")
		showVths  = flag.Bool("vths", true, "print optimized threshold voltages")
		quickMode = flag.Bool("quick", true, "reduced model sizes")
	)
	flag.Parse()

	if err := tensor.SetDefaultByName(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "falvolt:", err)
		os.Exit(1)
	}
	if err := run(*dataset, *method, *rate, *arrayN, *baseEp, *epochs,
		*trainN, *testN, *seed, *stateOut, *showVths, *quickMode); err != nil {
		fmt.Fprintln(os.Stderr, "falvolt:", err)
		os.Exit(1)
	}
}

func run(dataset, methodName string, rate float64, arrayN, baseEpochs, epochs,
	trainN, testN int, seed int64, stateOut string, showVths, quick bool) error {
	var spec snn.ModelSpec
	var gen func(datasets.Config) (*datasets.Dataset, error)
	dcfg := datasets.Config{Train: trainN, Test: testN, Seed: seed}
	switch strings.ToLower(dataset) {
	case "mnist":
		spec, gen = snn.MNISTSpec(), datasets.SyntheticMNIST
		dcfg.T = spec.T
	case "nmnist":
		spec, gen = snn.NMNISTSpec(), datasets.SyntheticNMNIST
		dcfg.T = spec.T
	case "dvsgesture":
		spec, gen = snn.DVSGestureSpec(), datasets.SyntheticDVSGesture
		dcfg.H, dcfg.W, dcfg.T = spec.InH, spec.InW, spec.T
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if quick {
		spec.EncoderC = 4
		if len(spec.BlockC) > 2 {
			spec.InH, spec.InW = 16, 16
			spec.BlockC = []int{8, 8, 16}
			dcfg.H, dcfg.W = 16, 16
		} else {
			spec.BlockC = []int{8, 8}
		}
		spec.FCHidden = 32
	}

	var method core.Method
	switch strings.ToLower(methodName) {
	case "fap":
		method = core.FaP
	case "fapit":
		method = core.FaPIT
	case "falvolt":
		method = core.FalVolt
	default:
		return fmt.Errorf("unknown method %q", methodName)
	}

	fmt.Printf("dataset %s | model %s | array %dx%d | fault rate %.0f%% | method %s\n",
		dataset, spec.Name, arrayN, arrayN, rate*100, method)

	ds, err := gen(dcfg)
	if err != nil {
		return err
	}
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	fmt.Printf("training baseline (%d samples, %d epochs)...\n", len(ds.Train), baseEpochs)
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, baseEpochs, 0.02,
		rand.New(rand.NewSource(seed+1)), true)
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy: %.3f\n", baseAcc)

	arr, err := systolic.New(systolic.Config{
		Rows: arrayN, Cols: arrayN, Format: fixed.Q16x16, Saturate: true,
	})
	if err != nil {
		return err
	}
	fm, err := faults.GenerateRate(arrayN, arrayN, rate, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return err
	}
	fmt.Println(fm)

	faultyAcc, err := core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy with unmitigated faults: %.3f\n", faultyAcc)

	rep, err := core.Mitigate(model, arr, fm, ds.Train, ds.Test, core.Config{
		Method: method, Epochs: epochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		Rng: rand.New(rand.NewSource(seed + 3)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("after %s: accuracy %.3f (pruned %.1f%% of weights, retrain %.1fs)\n",
		method, rep.Accuracy, rep.PrunedFraction*100, rep.RetrainDuration.Seconds())
	if showVths {
		fmt.Println("per-layer threshold voltages:")
		for i, name := range model.SpikingNames {
			fmt.Printf("  %-7s Vth = %.3f\n", name, rep.Vths[i])
		}
	}
	if stateOut != "" {
		if err := snn.SaveStateFile(model.Net.State(), stateOut); err != nil {
			return err
		}
		fmt.Println("saved mitigated network state to", stateOut)
	}
	return nil
}
