// Command campaign plans, runs, distributes and merges sharded
// fault-sweep campaigns: the figure sweeps of cmd/experiments (fig2,
// fig5a, fig5b, fig5c, the Fig. 6/7/8 "mitigation" study) and the
// manufacturing-yield study of cmd/yield, decomposed into deterministic
// seed-addressed trials by internal/campaign.
//
// Every subcommand is a thin shim over a declarative experiment spec
// (internal/spec): config flags compile into a Spec, -dump-spec prints
// it, and -spec runs from a spec file instead of flags ("-" reads
// stdin), so
//
//	campaign run -c fig5a -quick -dump-spec > fig5a.json
//	campaign run -spec fig5a.json -o fig5a.jsonl
//
// are the same run — and the spec file is the durable, reviewable,
// submittable description of it.
//
// Usage:
//
//	campaign plan -c fig5a -quick                      # print the trial list
//	campaign run  -c fig5a -quick -shard 0/2 -o a.jsonl   # run one shard
//	campaign run  -c fig5a -quick -shard 1/2 -o b.jsonl   # run the other
//	campaign merge a.jsonl b.jsonl                     # assemble figures
//
// Distributed mode replaces manual sharding with a coordinator that
// leases shards to worker daemons over HTTP (internal/cluster):
//
//	campaign serve -c fig5a -quick -addr :9090 -o fig5a.jsonl   # coordinator
//	campaign work  -coordinator http://host:9090 -checkpoint wrk/
//
// Workers are spec-free: the coordinator ships its canonical spec at
// registration and each worker builds the campaign from those bytes, so
// a worker cannot be misconfigured. The merged output is byte-identical
// to a single-process run however many workers ran (and died) along the
// way.
//
// `serve -state <dir>` makes the coordinator itself durable: it
// journals its shard table, leases and every accepted result to an
// append-only WAL in the state dir, so a serve killed mid-campaign and
// restarted with the same flags resumes the run — surviving workers
// re-register on their own and continue from their local checkpoints.
// `serve -balance <timing-source>` (and `plan -balance`) sizes shards
// by predicted wall-clock from a prior run's recorded per-trial timing
// instead of by trial count, so slow keys no longer serialize the
// fleet behind one overloaded shard.
//
// Where serve runs ONE campaign and exits, `campaign service` is the
// long-lived multi-tenant form (internal/service): a persistent
// catalog that accepts specs over HTTP, schedules every admitted run
// across one shared worker fleet with priority + fair-share, and
// survives its own restart. `campaign submit`, `campaign runs` and
// `campaign drain` are its clients:
//
//	campaign service -addr :9191 -state svc/ -token $TOK     # the service
//	campaign work -coordinator http://host:9191 -token $TOK  # shared fleet
//	RUN=$(campaign submit -service http://host:9191 -token $TOK \
//	          -c selftest -trials 200 -name nightly)
//	campaign runs -service http://host:9191 -token $TOK -id $RUN -watch -o out.jsonl
//
// A run appends each completed trial to its JSONL checkpoint (-o) and
// resumes from it after an interruption, skipping completed trial IDs;
// -max bounds one sitting. Shard partials merge bit-identically to a
// single-process run. The "selftest" campaign is a tiny model-free
// synthetic sweep for smoke-testing this machinery (see -trials).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/service"
	"falvolt/internal/spec"
	"falvolt/internal/tensor"

	// Register the figure ("fig2", "fig5a-c", "mitigation") and "yield"
	// campaign kinds with the spec registry.
	_ "falvolt/internal/core"
	_ "falvolt/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = planCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "service":
		err = serviceCmd(os.Args[2:])
	case "submit":
		err = submitCmd(os.Args[2:])
	case "runs":
		err = runsCmd(os.Args[2:])
	case "drain":
		err = drainCmd(os.Args[2:])
	case "work":
		err = workCmd(os.Args[2:])
	case "merge":
		err = mergeCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <plan|run|serve|service|submit|runs|drain|work|merge> [flags]

  plan  -c <kind> [-balance src] [-shards N] [config flags]
                                            print the deterministic trial list as JSON
                                            (or, with -balance/-shards, the shard table)
  run   -c <kind> -o <file> [-shard i/n] [-max N] [config flags]
                                            execute (one shard of) a campaign with
                                            JSONL checkpointing and resume
  serve -c <kind> -addr <host:port> [-shards N] [-lease-ttl D] [-o file]
        [-state dir] [-balance src] [-tls-cert crt -tls-key key] [config flags]
                                            coordinate ONE campaign across HTTP workers,
                                            then print the figures/report; -state makes
                                            the coordinator survive its own restart,
                                            -balance sizes shards by recorded timing
  service -addr <host:port> -state <dir> -token <tok> [-shards N] [-lease-ttl D]
          [-retain N] [-tls-cert crt -tls-key key]
                                            long-lived multi-tenant coordinator: accepts
                                            submitted specs, fair-shares one worker fleet
                                            across all running campaigns, survives restart;
                                            -retain prunes the oldest finished runs
  submit -service <url> -token <tok> [-priority P] [-name N] [-label k=v]
         (-c <kind> [config flags] | -spec <file>)
                                            submit a spec to a service; prints the run ID
  runs   -service <url> -token <tok> [-id run [-watch] [-cancel] [-o file]]
                                            list catalog runs, or watch/cancel/fetch one
  drain  -service <url> -token <tok> -worker <id|name>
                                            gracefully retire workers (finish shard, exit)
  work  -coordinator <url> [-token tok] [-checkpoint dir] [-cache dir] [-tls-ca pem]
                                            spec-free worker daemon: campaign specs
                                            arrive from the coordinator or service
                                            (https:// coordinators verify via -tls-ca)
  merge [-cache dir] [-json file] [-o file] <file>...
                                            merge shard/checkpoint files and print the
                                            figures or report (plus a timing summary)

plan, run, serve and submit also accept -spec <file> (a spec replaces the
config flags; "-" reads stdin) and -dump-spec (print the compiled spec and
exit). -token flags fall back to the CAMPAIGN_TOKEN environment variable.

campaign kinds: %s
`, strings.Join(spec.Kinds(), " "))
	os.Exit(2)
}

// noPositional rejects stray arguments after flag parsing: a typo like
// `campaign run fig5a` must fail with usage, not silently run defaults.
func noPositional(fs *flag.FlagSet) error {
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	return nil
}

// sigCtx is the root context of every subcommand: Ctrl-C or SIGTERM
// cancels it, aborting in-flight campaigns promptly (checkpoints keep
// the completed trials, so the same command resumes).
func sigCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// config collects the union of campaign configuration flags — the
// legacy surface that now compiles into a spec.Spec.
type config struct {
	specPath string
	dump     bool
	kind     string
	backend  string
	verbose  bool
	seed     int64

	// Suite (figure campaign) options.
	quick   bool
	arrayN  int
	epochs  int
	repeats int
	evalN   int
	cache   string

	// Yield campaign options.
	chips      int
	meanFaulty float64
	alpha      float64
	clustered  bool
	threshold  float64
	method     string
	mitEpochs  int
	baseEp     int

	// Selftest campaign options.
	trials  int
	delayMS int

	// Fault-model campaign options.
	model     string
	rates     string
	timesteps int
	density   float64

	// Salvage campaign options.
	models string
	mits   string

	// Site-sweep campaign options.
	bits   string
	pols   string
	sample int
}

func addConfigFlags(fs *flag.FlagSet, c *config) {
	fs.StringVar(&c.specPath, "spec", "", "experiment spec JSON file (replaces the config flags; \"-\" reads stdin)")
	fs.BoolVar(&c.dump, "dump-spec", false, "print the spec compiled from the flags and exit")
	fs.StringVar(&c.kind, "c", "", "campaign kind: "+strings.Join(spec.Kinds(), " | "))
	fs.StringVar(&c.backend, "backend", "", tensor.BackendFlagDoc)
	fs.BoolVar(&c.verbose, "v", false, "progress logging")
	fs.Int64Var(&c.seed, "seed", 7, "seed")
	fs.BoolVar(&c.quick, "quick", false, "reduced model/dataset sizes (figure campaigns)")
	fs.IntVar(&c.arrayN, "array", 64, "systolic array side (NxN)")
	fs.IntVar(&c.epochs, "epochs", 0, "retraining epochs (0 = default for mode)")
	fs.IntVar(&c.repeats, "repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
	fs.IntVar(&c.evalN, "eval", 0, "test samples per deployed evaluation (0 = default)")
	fs.StringVar(&c.cache, "cache", "", "directory for baseline snapshots (reused across shards)")
	// Yield flag defaults come from the one definition of the yield
	// defaults (spec.YieldSpec.Defaulted), shared with cmd/yield and
	// the spec builder.
	ydef := spec.YieldSpec{}.Defaulted()
	fs.IntVar(&c.chips, "chips", ydef.Chips, "yield: number of simulated dies")
	fs.Float64Var(&c.meanFaulty, "mean-faulty", ydef.MeanFaulty, "yield: mean faulty PEs per die")
	fs.Float64Var(&c.alpha, "alpha", ydef.Alpha, "yield: defect clustering (smaller = heavier tails)")
	fs.BoolVar(&c.clustered, "clustered", true, "yield: spatially clustered fault maps")
	fs.Float64Var(&c.threshold, "threshold", ydef.Threshold, "yield: minimum shipping accuracy")
	fs.StringVar(&c.method, "method", ydef.Method, "yield: salvage policy fap | fapit | falvolt")
	fs.IntVar(&c.mitEpochs, "mit-epochs", ydef.MitEpochs, "yield: retraining epochs per salvaged die")
	fs.IntVar(&c.baseEp, "base-epochs", ydef.BaseEpochs, "yield: baseline training epochs")
	fs.IntVar(&c.trials, "trials", 24, "selftest: synthetic trial count")
	fs.IntVar(&c.delayMS, "delay", 0, "selftest: artificial per-trial delay in ms (scheduling smoke tests)")
	fs.StringVar(&c.model, "model", "", "faultmodel: fault model stuckat | bitflip | transient (\"\" = stuckat)")
	fs.StringVar(&c.rates, "rates", "", "faultmodel/salvage: comma-separated rate ladder (\"\" = default)")
	fs.IntVar(&c.timesteps, "timesteps", 0, "faultmodel/sitesweep: inference horizon per trial (0 = default)")
	fs.Float64Var(&c.density, "density", 0, "faultmodel/sitesweep: input spike density (0 = default)")
	fs.StringVar(&c.models, "models", "", "salvage: comma-separated fault-model axis (\"\" = default)")
	fs.StringVar(&c.mits, "mitigations", "", "salvage: comma-separated mitigation kinds: "+strings.Join(spec.MitigationKinds(), " | ")+" (\"\" = default)")
	fs.StringVar(&c.bits, "bits", "", "sitesweep: comma-separated stuck bit positions (\"\" = every word bit)")
	fs.StringVar(&c.pols, "pols", "", "sitesweep: stuck-at polarity both | sa0 | sa1 (\"\" = both)")
	fs.IntVar(&c.sample, "sample", 0, "sitesweep: seed-addressed random site subset (0 = exhaustive)")
}

// parseRates parses the -rates ladder ("0.01,0.05,0.1").
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -rates entry %q", f)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// parseList splits a comma-separated flag into trimmed entries.
func parseList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}

// parseBits parses the -bits ladder ("0,8,31") into bit positions.
func parseBits(s string) ([]uint, error) {
	var bits []uint
	for _, f := range parseList(s) {
		b, err := strconv.ParseUint(f, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad -bits entry %q", f)
		}
		bits = append(bits, uint(b))
	}
	return bits, nil
}

// parseMitigations turns the -mitigations kind list into specs; per-kind
// knobs (epochs, lr, vth, bypass bit) need a spec file.
func parseMitigations(s string) []spec.MitigationSpec {
	var mits []spec.MitigationSpec
	for _, kind := range parseList(s) {
		mits = append(mits, spec.MitigationSpec{Kind: kind})
	}
	return mits
}

// spec loads -spec or compiles the config flags into a Spec. The
// -backend flag overrides the spec's execution backend either way.
func (c *config) spec() (*spec.Spec, error) {
	if c.specPath != "" {
		return spec.LoadOverride(c.specPath, c.backend)
	}
	s := &spec.Spec{Version: spec.Version, Kind: c.kind, Seed: c.seed, Backend: c.backend}
	switch c.kind {
	case "":
		return nil, fmt.Errorf("missing -c <kind> or -spec <file>")
	case "yield":
		s.Yield = &spec.YieldSpec{
			Chips: c.chips, MeanFaulty: c.meanFaulty, Alpha: c.alpha,
			Clustered: c.clustered, Threshold: c.threshold, Method: c.method,
			MitEpochs: c.mitEpochs, BaseEpochs: c.baseEp, Array: c.arrayN,
			Eval: c.evalN,
		}
	case "selftest":
		s.Selftest = &spec.SelftestSpec{Trials: c.trials, DelayMillis: c.delayMS}
	case "faultmodel":
		rates, err := parseRates(c.rates)
		if err != nil {
			return nil, err
		}
		s.FaultModel = &spec.FaultModelCampaignSpec{
			Model:   spec.FaultModelSpec{Kind: c.model},
			Array:   c.arrayN,
			Rates:   rates,
			Repeats: c.repeats,
			// Batch stays at its documented default; the flag surface
			// exposes the knobs sweeps actually vary.
			Timesteps: c.timesteps,
			Density:   c.density,
		}
	case "salvage":
		rates, err := parseRates(c.rates)
		if err != nil {
			return nil, err
		}
		s.Salvage = &spec.SalvageCampaignSpec{
			Models:      parseList(c.models),
			Mitigations: parseMitigations(c.mits),
			Rates:       rates,
			Repeats:     c.repeats,
			Array:       c.arrayN,
			BaseEpochs:  c.baseEp,
			Epochs:      c.epochs,
		}
	case "sitesweep":
		bits, err := parseBits(c.bits)
		if err != nil {
			return nil, err
		}
		s.SiteSweep = &spec.SiteSweepSpec{
			Array:     c.arrayN,
			Bits:      bits,
			Pols:      c.pols,
			Sample:    c.sample,
			Timesteps: c.timesteps,
			Density:   c.density,
		}
	default:
		s.Suite = &spec.SuiteSpec{
			Quick: c.quick, Array: c.arrayN, Epochs: c.epochs,
			Repeats: c.repeats, Eval: c.evalN,
		}
	}
	return s, nil
}

// buildOpts assembles the execution-local builder resources.
func (c *config) buildOpts() spec.BuildOpts {
	opt := spec.BuildOpts{CacheDir: c.cache}
	if c.verbose {
		opt.Log = os.Stderr
	}
	return opt
}

// prepare resolves the spec and, unless -dump-spec short-circuits,
// applies the backend and builds the campaign. A nil Built with nil
// error means the spec was dumped and the subcommand should exit.
func (c *config) prepare() (*spec.Spec, *spec.Built, error) {
	s, err := c.spec()
	if err != nil {
		return nil, nil, err
	}
	if c.dump {
		return s, nil, s.Dump(os.Stdout)
	}
	if err := tensor.SetDefaultByName(s.Backend); err != nil {
		return nil, nil, err
	}
	built, err := spec.Build(s, c.buildOpts())
	if err != nil {
		return nil, nil, err
	}
	return s, built, nil
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var c config
	var (
		balance = fs.String("balance", "", "plan load-aware shards from this timing source (a checkpoint, WAL, or state dir)")
		shards  = fs.Int("shards", 0, "with -balance: print the shard table for this many shards (0 = coordinator default)")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	s, built, err := c.prepare()
	if err != nil || built == nil {
		return err
	}
	trials, err := built.Campaign.Trials()
	if err != nil {
		return err
	}
	// The shard-table view is opt-in by flag only: a spec file that
	// happens to carry a planner must not change what `plan` prints
	// (nor demand the timing file on a machine that only wants the
	// trial list).
	if *balance != "" || *shards > 0 {
		return printShardPlan(s, trials, plannerName(s, *balance), *shards)
	}
	b, err := json.MarshalIndent(trials, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	fmt.Fprintf(os.Stderr, "%d trials (spec %s)\n", len(trials), fingerprintOf(s))
	return nil
}

// printShardPlan renders the shard table a coordinator would serve —
// the dry-run view of -shards / -balance.
func printShardPlan(s *spec.Spec, trials []campaign.Trial, name string, shards int) error {
	planner, err := campaign.PlannerByName(name)
	if err != nil {
		return err
	}
	planned, err := planner.Plan(trials, campaign.ResolveShards(shards, cluster.DefaultShards, len(trials)))
	if err != nil {
		return err
	}
	type shardView struct {
		Shard            string  `json:"shard"`
		Trials           int     `json:"trials"`
		PredictedSeconds float64 `json:"predictedSeconds,omitempty"`
		IDs              []int   `json:"ids"`
	}
	view := make([]shardView, len(planned))
	for i, ps := range planned {
		view[i] = shardView{
			Shard: ps.Label, Trials: len(ps.Trials),
			PredictedSeconds: ps.PredictedSeconds, IDs: ps.TrialIDs(),
		}
	}
	b, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	kind := name
	if kind == "" {
		kind = "uniform"
	}
	fmt.Fprintf(os.Stderr, "%d trials in %d shards (planner %s, spec %s)\n",
		len(trials), len(planned), kind, fingerprintOf(s))
	return nil
}

// plannerName resolves the effective planner: the -balance flag wins
// over the spec's planner field.
func plannerName(s *spec.Spec, balanceFlag string) string {
	if balanceFlag != "" {
		return "balance:" + balanceFlag
	}
	return s.Planner
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var c config
	var (
		out      = fs.String("o", "", "checkpoint/output JSONL (default <kind>-shard<i>of<n>.jsonl)")
		shardArg = fs.String("shard", "", "run the i-th of n interleaved trial subsets (i/n); overrides the spec's shard")
		maxNew   = fs.Int("max", 0, "max new trials this sitting (0 = unlimited)")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	s, built, err := c.prepare()
	if err != nil || built == nil {
		return err
	}
	shard, err := shardFor(s, *shardArg)
	if err != nil {
		return err
	}
	if *out == "" {
		*out = fmt.Sprintf("%s-shard%dof%d.jsonl", s.Kind, shard.Index, max(shard.Count, 1))
	}
	ctx, stop := sigCtx()
	defer stop()
	opt := campaign.Options{Context: ctx, Shard: shard, Checkpoint: *out, MaxNew: *maxNew}
	if c.verbose {
		opt.Log = os.Stderr
	}
	rr, err := campaign.Run(built.Campaign, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign %s shard %s: %d/%d trials complete (%d resumed, %d run) -> %s\n",
		s.Kind, shard, len(rr.Results), rr.Planned, rr.Resumed, rr.Executed, *out)
	if !rr.Complete {
		fmt.Fprintln(os.Stderr, "partial: rerun the same command to resume")
		return nil
	}
	if !shard.IsWhole() {
		fmt.Fprintf(os.Stderr, "shard complete: merge all shard files with `campaign merge`\n")
		return nil
	}
	return built.Render(os.Stdout, rr.Results)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var c config
	var (
		addr     = fs.String("addr", ":9090", "coordinator listen address")
		shards   = fs.Int("shards", 0, "shard count (0 = auto; more shards = finer reassignment)")
		leaseTTL = fs.Duration("lease-ttl", 0, "shard lease deadline without a heartbeat (0 = default)")
		out      = fs.String("o", "", "checkpoint/output JSONL (default <kind>-cluster.jsonl); resumes")
		state    = fs.String("state", "", "state directory for the coordinator WAL: journal shard table, leases and results; a restarted serve with the same -state resumes the run")
		balance  = fs.String("balance", "", "size shards by predicted wall-clock from this timing source (a checkpoint, WAL, or state dir of a prior run)")
		tlsCert  = fs.String("tls-cert", "", "serve HTTPS with this PEM certificate (requires -tls-key)")
		tlsKey   = fs.String("tls-key", "", "PEM private key for -tls-cert")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	s, built, err := c.prepare()
	if err != nil || built == nil {
		return err
	}
	if *out == "" {
		*out = s.Kind + "-cluster.jsonl"
	}
	// Fail fast on a misconfigured -state: resolve it to an absolute
	// path and prove it writable NOW, not at the first journal append
	// mid-campaign.
	if *state != "" {
		abs, err := ensureStateDir(*state)
		if err != nil {
			return err
		}
		*state = abs
	}
	pn := plannerName(s, *balance)
	ctx, stop := sigCtx()
	defer stop()
	co := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Addr: *addr, Spec: s, Shards: *shards, LeaseTTL: *leaseTTL,
		PlannerName: pn, StateDir: *state, Log: os.Stderr,
		TLSCert: *tlsCert, TLSKey: *tlsKey,
	})
	// One startup line with everything an operator needs to point
	// workers (and debug a wrong flag): the RESOLVED listen address —
	// ":0" is useless in a log — plus state dir and planner.
	go func() {
		<-co.Ready()
		stateDesc := *state
		if stateDesc == "" {
			stateDesc = "none (in-memory; a restart loses leases and results)"
		}
		planDesc := pn
		if planDesc == "" {
			planDesc = "uniform"
		}
		fmt.Fprintf(os.Stderr, "serve: listening on %s (state %s, planner %s, spec %s)\n",
			co.URL(), stateDesc, planDesc, fingerprintOf(s))
	}()
	opt := campaign.Options{Context: ctx, Runner: co, Checkpoint: *out, Log: os.Stderr}
	rr, err := campaign.Run(built.Campaign, opt)
	if err != nil {
		return err
	}
	if rr.Executed == 0 && rr.Planned > 0 {
		// Nothing was pending, so the runner — and thus the HTTP server
		// — never started; workers pointed here will see connection
		// refused, not StatusDone.
		fmt.Fprintf(os.Stderr, "checkpoint %s already complete: no coordinator was started; stop any waiting workers\n", *out)
	}
	fmt.Fprintf(os.Stderr, "campaign %s: %d/%d trials complete -> %s\n",
		s.Kind, len(rr.Results), rr.Planned, *out)
	return built.Render(os.Stdout, rr.Results)
}

func workCmd(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	var (
		coord   = fs.String("coordinator", "", "coordinator or campaign-service base URL (http://host:port)")
		token   = fs.String("token", "", "bearer token for a campaign service (default $CAMPAIGN_TOKEN; single-run coordinators ignore it)")
		name    = fs.String("name", "", "worker display name (default host-pid)")
		ckptDir = fs.String("checkpoint", "", "directory for local per-shard JSONL checkpoints (resume on restart)")
		cache   = fs.String("cache", "", "directory for baseline snapshots (reused across runs)")
		poll    = fs.Duration("poll", 0, "idle poll interval (0 = default)")
		tlsCA   = fs.String("tls-ca", "", "PEM CA bundle for an https:// coordinator with a private certificate")
		backend = fs.String("backend", "", tensor.BackendFlagDoc)
	)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("work needs -coordinator <url>")
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		return err
	}
	ctx, stop := sigCtx()
	defer stop()
	// No campaign configuration here, by design: the coordinator ships
	// its canonical spec at registration and the worker builds from it.
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: *coord, Token: resolveToken(*token), Name: *name,
		CheckpointDir: *ckptDir, CacheDir: *cache, Poll: *poll,
		TLSCA: *tlsCA, Log: os.Stderr,
	})
	return w.Run(ctx)
}

// serviceCmd runs the long-lived multi-tenant coordinator: a catalog of
// submitted runs fair-shared across one worker fleet, durable across
// its own restarts (internal/service).
func serviceCmd(args []string) error {
	fs := flag.NewFlagSet("service", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":9191", "service listen address")
		state    = fs.String("state", "", "state directory (required): a lock file plus one WAL-journaled directory per run")
		token    = fs.String("token", "", "bearer token required on every endpoint (default $CAMPAIGN_TOKEN; required)")
		shards   = fs.Int("shards", 0, "shards per run (0 = auto; more shards = finer fair-share interleaving)")
		leaseTTL = fs.Duration("lease-ttl", 0, "shard lease deadline without a heartbeat (0 = default)")
		cache    = fs.String("cache", "", "directory for baseline snapshots (reused across runs)")
		retain   = fs.Int("retain", 0, "keep at most this many finished (done/failed/cancelled) runs, pruning oldest first (0 = keep all)")
		tlsCert  = fs.String("tls-cert", "", "serve HTTPS with this PEM certificate (requires -tls-key)")
		tlsKey   = fs.String("tls-key", "", "PEM private key for -tls-cert")
		backend  = fs.String("backend", "", tensor.BackendFlagDoc)
	)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("service needs -state <dir>")
	}
	abs, err := ensureStateDir(*state)
	if err != nil {
		return err
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		return err
	}
	ctx, stop := sigCtx()
	defer stop()
	svc := service.New(service.Config{
		Addr: *addr, StateDir: abs, Token: resolveToken(*token),
		Shards: *shards, LeaseTTL: *leaseTTL, CacheDir: *cache,
		Retain: *retain, TLSCert: *tlsCert, TLSKey: *tlsKey, Log: os.Stderr,
	})
	return svc.Run(ctx)
}

// submitCmd compiles a spec exactly like plan/run/serve and posts it to
// a campaign service. The run ID — the handle for `campaign runs` — is
// the only thing printed to stdout, so shells can capture it.
func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var c config
	labels := labelFlags{}
	var (
		svcURL   = fs.String("service", "", "campaign service base URL (http://host:port)")
		token    = fs.String("token", "", "bearer token (default $CAMPAIGN_TOKEN)")
		tlsCA    = fs.String("tls-ca", "", "PEM CA bundle for an https:// service with a private certificate")
		name     = fs.String("name", "", "catalog display name for the run (overrides the spec's name)")
		priority = fs.Int("priority", 0, fmt.Sprintf("scheduling priority %d..%d; higher leases first within the fleet", -service.MaxPriority, service.MaxPriority))
	)
	fs.Var(labels, "label", "catalog label k=v (repeatable; merged over the spec's labels)")
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	s, err := c.spec()
	if err != nil {
		return err
	}
	if *name != "" {
		s.Name = *name
	}
	if len(labels) > 0 {
		if s.Labels == nil {
			s.Labels = map[string]string{}
		}
		for k, v := range labels {
			s.Labels[k] = v
		}
	}
	if c.dump {
		return s.Dump(os.Stdout)
	}
	if *svcURL == "" {
		return fmt.Errorf("submit needs -service <url>")
	}
	enc, err := s.Encode()
	if err != nil {
		return err
	}
	// The service builds and validates the spec on admission; no local
	// build here — the submitting machine may lack the dataset/caches.
	cl, err := service.NewClientTLS(*svcURL, resolveToken(*token), *tlsCA)
	if err != nil {
		return err
	}
	resp, err := cl.Submit(enc, *priority)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s: %d trials in %d shards (spec %s)\n",
		resp.RunID, resp.Trials, resp.Shards, resp.Fingerprint)
	fmt.Println(resp.RunID)
	return nil
}

// runsCmd is the catalog viewer: list all runs, or inspect / watch /
// cancel one and fetch its completed results.
func runsCmd(args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	var (
		svcURL = fs.String("service", "", "campaign service base URL (http://host:port)")
		token  = fs.String("token", "", "bearer token (default $CAMPAIGN_TOKEN)")
		tlsCA  = fs.String("tls-ca", "", "PEM CA bundle for an https:// service with a private certificate")
		id     = fs.String("id", "", "run ID (from `campaign submit`); \"\" lists the whole catalog")
		watch  = fs.Bool("watch", false, "with -id: long-poll until the run reaches a terminal state")
		cancel = fs.Bool("cancel", false, "with -id: cancel the run (idempotent)")
		out    = fs.String("o", "", "with -id: save the completed run's checkpoint JSONL here (mergeable)")
	)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	if *svcURL == "" {
		return fmt.Errorf("runs needs -service <url>")
	}
	cl, err := service.NewClientTLS(*svcURL, resolveToken(*token), *tlsCA)
	if err != nil {
		return err
	}
	if *id == "" {
		list, err := cl.List()
		if err != nil {
			return err
		}
		for _, r := range list.Runs {
			name := r.Name
			if name == "" {
				name = "-"
			}
			fmt.Printf("%s\t%s\t%d/%d\tprio %d\t%s\t%s\n",
				r.ID, r.State, r.Done, r.Trials, r.Priority, r.Kind, name)
		}
		return nil
	}
	var sum service.RunSummary
	switch {
	case *cancel:
		sum, err = cl.Cancel(*id)
	case *watch:
		sum, err = cl.Watch(*id)
	default:
		sum, err = cl.Get(*id)
	}
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	if *out != "" {
		if sum.State != service.RunDone {
			return fmt.Errorf("run %s is %s; results exist only for done runs", *id, sum.State)
		}
		data, err := cl.Results(*id)
		if err != nil {
			return err
		}
		if err := campaign.WriteFileAtomic(*out, data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run %s results -> %s\n", *id, *out)
	}
	return nil
}

// drainCmd gracefully retires workers: each finishes its current shard,
// then exits instead of leasing more.
func drainCmd(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	var (
		svcURL = fs.String("service", "", "campaign service base URL (http://host:port)")
		token  = fs.String("token", "", "bearer token (default $CAMPAIGN_TOKEN)")
		tlsCA  = fs.String("tls-ca", "", "PEM CA bundle for an https:// service with a private certificate")
		worker = fs.String("worker", "", "worker ID or display name to drain")
	)
	fs.Parse(args)
	if err := noPositional(fs); err != nil {
		return err
	}
	if *svcURL == "" || *worker == "" {
		return fmt.Errorf("drain needs -service <url> and -worker <id|name>")
	}
	cl, err := service.NewClientTLS(*svcURL, resolveToken(*token), *tlsCA)
	if err != nil {
		return err
	}
	resp, err := cl.Drain(*worker)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "draining %d worker(s)\n", resp.Drained)
	return nil
}

// labelFlags accumulates repeatable -label k=v flags.
type labelFlags map[string]string

func (l labelFlags) String() string {
	var parts []string
	for k, v := range l {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (l labelFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("label %q is not k=v", s)
	}
	l[k] = v
	return nil
}

// resolveToken falls back to the CAMPAIGN_TOKEN environment variable so
// tokens stay out of shell history and process listings.
func resolveToken(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return os.Getenv("CAMPAIGN_TOKEN")
}

// ensureStateDir resolves a -state flag to an absolute, writable
// directory — creating it if needed — so misconfiguration fails at
// startup, not at the first journal write.
func ensureStateDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("resolve -state %s: %w", dir, err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return "", fmt.Errorf("-state %s unusable: %w", dir, err)
	}
	probe, err := os.CreateTemp(abs, ".probe-*")
	if err != nil {
		return "", fmt.Errorf("-state %s not writable: %w", abs, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return abs, nil
}

func mergeCmd(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	var (
		cache   = fs.String("cache", "", "baseline snapshot dir (avoids retraining for mitigation merges)")
		jsonOut = fs.String("json", "", "also write merged figures/report as JSON to this file (atomic)")
		outFile = fs.String("o", "", "also write the merged results as one checkpoint JSONL (atomic)")
		backend = fs.String("backend", "", tensor.BackendFlagDoc)
		verbose = fs.Bool("v", false, "progress logging")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("merge needs at least one checkpoint file")
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		return err
	}
	header, results, err := campaign.MergeFiles(fs.Args()...)
	if err != nil {
		return err
	}
	if missing := campaign.Missing(results, header.Trials); len(missing) > 0 {
		return fmt.Errorf("merged results cover %d/%d trials (missing ids start at %d); run the remaining shards first",
			len(results), header.Trials, missing[0])
	}
	fmt.Fprintf(os.Stderr, "merged %d files: campaign %s, %d trials\n", fs.NArg(), header.Campaign, len(results))
	// Per-key wall-clock: where this campaign's compute actually went
	// (the load-aware shard-sizing signal).
	campaign.WriteTimingSummary(os.Stderr, results)

	// The checkpoint header carries the canonical spec, so the merge
	// rebuilds the exact campaign — and its renderers — with no
	// matching flags. Resolve it before writing any artifact, so a
	// renderless merge (e.g. pre-spec checkpoint files) fails cleanly
	// instead of half-succeeding.
	s, err := spec.FromMeta(header.Meta)
	if err != nil {
		return err
	}
	opt := spec.BuildOpts{CacheDir: *cache}
	if *verbose {
		opt.Log = os.Stderr
	}
	built, err := spec.Build(s, opt)
	if err != nil {
		return err
	}
	if *outFile != "" {
		// Crash-safe: an interrupted merge never leaves a torn artifact.
		if err := campaign.WriteCheckpointAtomic(*outFile, header, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged checkpoint -> %s\n", *outFile)
	}
	if err := built.Render(os.Stdout, results); err != nil {
		return err
	}
	if *jsonOut != "" {
		v, err := built.JSON(results)
		if err != nil {
			return err
		}
		return writeJSON(*jsonOut, v)
	}
	return nil
}

// shardFor resolves the effective shard: the -shard flag wins over the
// spec's shard field.
func shardFor(s *spec.Spec, flagArg string) (campaign.Shard, error) {
	arg := flagArg
	if arg == "" {
		arg = s.Shard
	}
	return campaign.ParseShard(arg)
}

func fingerprintOf(s *spec.Spec) string {
	fp, err := s.Fingerprint()
	if err != nil {
		return "?"
	}
	return fp
}

// writeJSON writes indented JSON crash-safely (temp file + fsync +
// rename), so an interrupted merge never leaves a half-written file.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, append(b, '\n'))
}
