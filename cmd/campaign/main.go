// Command campaign plans, runs and merges sharded fault-sweep campaigns:
// the figure sweeps of cmd/experiments (fig2, fig5a, fig5b, fig5c, the
// Fig. 6/7/8 "mitigation" study) and the manufacturing-yield study of
// cmd/yield, decomposed into deterministic seed-addressed trials by
// internal/campaign.
//
// Usage:
//
//	campaign plan -c fig5a -quick                      # print the trial list
//	campaign run  -c fig5a -quick -shard 0/2 -o a.jsonl   # run one shard
//	campaign run  -c fig5a -quick -shard 1/2 -o b.jsonl   # run the other
//	campaign merge a.jsonl b.jsonl                     # assemble figures
//
// A run appends each completed trial to its JSONL checkpoint (-o) and
// resumes from it after an interruption, skipping completed trial IDs;
// -max bounds one sitting. Shard partials merge bit-identically to a
// single-process run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"falvolt/internal/campaign"
	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/experiments"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = planCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "merge":
		err = mergeCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <plan|run|merge> [flags]

  plan  -c <name> [config flags]            print the deterministic trial list as JSON
  run   -c <name> -o <file> [-shard i/n] [-max N] [config flags]
                                            execute (one shard of) a campaign with
                                            JSONL checkpointing and resume
  merge [-cache dir] [-json file] <file>... merge shard/checkpoint files and print
                                            the figures or yield report

campaigns: %s yield
`, strings.Join(experiments.CampaignNames(), " "))
	os.Exit(2)
}

// config collects the union of campaign configuration flags.
type config struct {
	name    string
	backend string
	verbose bool

	// Suite (figure campaign) options.
	quick   bool
	seed    int64
	arrayN  int
	epochs  int
	repeats int
	evalN   int
	cache   string

	// Yield campaign options.
	chips      int
	meanFaulty float64
	alpha      float64
	clustered  bool
	threshold  float64
	method     string
	mitEpochs  int
	baseEp     int
}

func addConfigFlags(fs *flag.FlagSet, c *config) {
	fs.StringVar(&c.name, "c", "", "campaign: "+strings.Join(experiments.CampaignNames(), " | ")+" | yield")
	fs.StringVar(&c.backend, "backend", "", tensor.BackendFlagDoc)
	fs.BoolVar(&c.verbose, "v", false, "progress logging")
	fs.BoolVar(&c.quick, "quick", false, "reduced model/dataset sizes (figure campaigns)")
	fs.Int64Var(&c.seed, "seed", 7, "seed")
	fs.IntVar(&c.arrayN, "array", 64, "systolic array side (NxN)")
	fs.IntVar(&c.epochs, "epochs", 0, "retraining epochs (0 = default for mode)")
	fs.IntVar(&c.repeats, "repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
	fs.IntVar(&c.evalN, "eval", 0, "test samples per deployed evaluation (0 = default)")
	fs.StringVar(&c.cache, "cache", "", "directory for baseline snapshots (reused across shards)")
	fs.IntVar(&c.chips, "chips", 12, "yield: number of simulated dies")
	fs.Float64Var(&c.meanFaulty, "mean-faulty", 60, "yield: mean faulty PEs per die")
	fs.Float64Var(&c.alpha, "alpha", 1.0, "yield: defect clustering (smaller = heavier tails)")
	fs.BoolVar(&c.clustered, "clustered", true, "yield: spatially clustered fault maps")
	fs.Float64Var(&c.threshold, "threshold", 0.85, "yield: minimum shipping accuracy")
	fs.StringVar(&c.method, "method", "falvolt", "yield: salvage policy fap | fapit | falvolt")
	fs.IntVar(&c.mitEpochs, "mit-epochs", 4, "yield: retraining epochs per salvaged die")
	fs.IntVar(&c.baseEp, "base-epochs", 12, "yield: baseline training epochs")
}

func (c *config) suite() *experiments.Suite {
	opt := experiments.DefaultOptions()
	if c.quick {
		opt = experiments.QuickOptions()
	}
	opt.Seed = c.seed
	opt.ArrayRows, opt.ArrayCols = c.arrayN, c.arrayN
	opt.CacheDir = c.cache
	if c.epochs > 0 {
		opt.RetrainEpochs = c.epochs
	}
	if c.repeats > 0 {
		opt.Repeats = c.repeats
	}
	if c.evalN > 0 {
		opt.EvalSamples = c.evalN
	}
	if c.verbose {
		opt.Log = os.Stderr
	}
	return experiments.NewSuite(opt)
}

func (c *config) yieldConfig() (core.YieldConfig, error) {
	var m core.Method
	switch strings.ToLower(c.method) {
	case "fap":
		m = core.FaP
	case "fapit":
		m = core.FaPIT
	case "falvolt":
		m = core.FalVolt
	default:
		return core.YieldConfig{}, fmt.Errorf("unknown method %q", c.method)
	}
	return core.YieldConfig{
		Chips:     c.chips,
		Defects:   faults.DefectModel{MeanFaulty: c.meanFaulty, Alpha: c.alpha},
		Clustered: c.clustered,
		Threshold: c.threshold,
		Mitigation: core.Config{
			Method: m, Epochs: c.mitEpochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		},
		EvalSamples: 96,
		Seed:        c.seed,
	}, nil
}

// yieldFingerprint records the baseline-training provenance the
// YieldConfig cannot see; cmd/yield writes the same keys so shard files
// from either tool merge iff their setups match.
func (c *config) yieldFingerprint() map[string]string {
	return map[string]string{
		"base-epochs": strconv.Itoa(c.baseEp),
		"baseline":    "synthetic-mnist-320/128",
	}
}

// yieldCampaign wraps the yield study as a campaign. The baseline is
// trained lazily on first worker use, so `plan` and fully-resumed runs
// never pay for it.
func (c *config) yieldCampaign() (campaign.Campaign, core.YieldConfig, error) {
	cfg, err := c.yieldConfig()
	if err != nil {
		return nil, cfg, err
	}
	build := func() (core.YieldDeps, error) {
		ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 320, Test: 128, T: 4, Seed: c.seed})
		if err != nil {
			return core.YieldDeps{}, err
		}
		spec := snn.MNISTSpec()
		spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
		buildModel := func() (*snn.Model, error) {
			return snn.Build(spec, rand.New(rand.NewSource(c.seed)))
		}
		model, err := buildModel()
		if err != nil {
			return core.YieldDeps{}, err
		}
		fmt.Fprintln(os.Stderr, "training baseline...")
		baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, c.baseEp, 0.02,
			rand.New(rand.NewSource(c.seed+1)), true)
		if err != nil {
			return core.YieldDeps{}, err
		}
		fmt.Fprintf(os.Stderr, "baseline accuracy %.3f; shipping threshold %.2f\n", baseAcc, c.threshold)
		arr, err := systolic.New(systolic.Config{Rows: c.arrayN, Cols: c.arrayN, Format: fixed.Q16x16, Saturate: true})
		if err != nil {
			return core.YieldDeps{}, err
		}
		return core.YieldDeps{
			Model: model, Baseline: model.Net.State(), Arr: arr,
			Train: ds.Train, Test: ds.Test, BuildModel: buildModel,
		}, nil
	}
	cam, err := core.LazyYieldCampaign(c.arrayN, c.arrayN, cfg, c.yieldFingerprint(), build)
	return cam, cfg, err
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var c config
	addConfigFlags(fs, &c)
	fs.Parse(args)
	var trials []campaign.Trial
	var err error
	if c.name == "yield" {
		cfg, cerr := c.yieldConfig()
		if cerr != nil {
			return cerr
		}
		trials, err = core.YieldTrials(c.arrayN, c.arrayN, cfg)
	} else {
		cam, cerr := c.suite().Campaign(c.name)
		if cerr != nil {
			return cerr
		}
		trials, err = cam.Trials()
	}
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(trials, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	fmt.Fprintf(os.Stderr, "%d trials\n", len(trials))
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var c config
	var (
		out      = fs.String("o", "", "checkpoint/output JSONL (default <name>-shard<i>of<n>.jsonl)")
		shardArg = fs.String("shard", "", "run the i-th of n interleaved trial subsets (i/n)")
		maxNew   = fs.Int("max", 0, "max new trials this sitting (0 = unlimited)")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := tensor.SetDefaultByName(c.backend); err != nil {
		return err
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		return err
	}
	if *out == "" {
		*out = fmt.Sprintf("%s-shard%dof%d.jsonl", c.name, shard.Index, max(shard.Count, 1))
	}

	var cam campaign.Campaign
	var cfg core.YieldConfig
	var suite *experiments.Suite
	if c.name == "yield" {
		cam, cfg, err = c.yieldCampaign()
	} else {
		suite = c.suite()
		cam, err = suite.Campaign(c.name)
	}
	if err != nil {
		return err
	}
	opt := campaign.Options{Shard: shard, Checkpoint: *out, MaxNew: *maxNew}
	if c.verbose {
		opt.Log = os.Stderr
	}
	rr, err := campaign.Run(cam, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign %s shard %s: %d/%d trials complete (%d resumed, %d run) -> %s\n",
		c.name, shard, len(rr.Results), rr.Planned, rr.Resumed, rr.Executed, *out)
	if !rr.Complete {
		fmt.Fprintln(os.Stderr, "partial: rerun the same command to resume")
		return nil
	}
	if !shard.IsWhole() {
		fmt.Fprintf(os.Stderr, "shard complete: merge all shard files with `campaign merge`\n")
		return nil
	}
	// Whole campaign finished in one process: print the output directly.
	if c.name == "yield" {
		rep, err := core.YieldFromResults(rr.Results, cfg.Chips, cfg.Threshold)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	}
	figs, err := suite.Figures(c.name, rr.Results)
	if err != nil {
		return err
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	return nil
}

func mergeCmd(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	var (
		cache   = fs.String("cache", "", "baseline snapshot dir (avoids retraining for mitigation merges)")
		jsonOut = fs.String("json", "", "also write merged figures/report as JSON to this file")
		backend = fs.String("backend", "", tensor.BackendFlagDoc)
		verbose = fs.Bool("v", false, "progress logging")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge needs at least one checkpoint file")
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		return err
	}
	header, results, err := campaign.MergeFiles(fs.Args()...)
	if err != nil {
		return err
	}
	if missing := campaign.Missing(results, header.Trials); len(missing) > 0 {
		return fmt.Errorf("merged results cover %d/%d trials (missing ids start at %d); run the remaining shards first",
			len(results), header.Trials, missing[0])
	}
	fmt.Fprintf(os.Stderr, "merged %d files: campaign %s, %d trials\n", fs.NArg(), header.Campaign, len(results))

	if header.Campaign == "yield" {
		chips, err1 := strconv.Atoi(header.Meta["chips"])
		threshold, err2 := strconv.ParseFloat(header.Meta["threshold"], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("yield checkpoint header missing chips/threshold metadata")
		}
		rep, err := core.YieldFromResults(results, chips, threshold)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		if *jsonOut != "" {
			return writeJSON(*jsonOut, rep)
		}
		return nil
	}

	suite, err := suiteFromMeta(header.Meta, *cache, *verbose)
	if err != nil {
		return err
	}
	figs, err := suite.Figures(header.Campaign, results)
	if err != nil {
		return err
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	if *jsonOut != "" {
		return writeJSON(*jsonOut, figs)
	}
	return nil
}

// suiteFromMeta reconstructs the suite a figure campaign ran with from
// its checkpoint metadata, so merge needs no matching flags.
func suiteFromMeta(meta map[string]string, cache string, verbose bool) (*experiments.Suite, error) {
	quick := meta["quick"] == "true"
	opt := experiments.DefaultOptions()
	if quick {
		opt = experiments.QuickOptions()
	}
	if v, err := strconv.ParseInt(meta["seed"], 10, 64); err == nil {
		opt.Seed = v
	}
	if rows, _, ok := strings.Cut(meta["array"], "x"); ok {
		if n, err := strconv.Atoi(rows); err == nil {
			opt.ArrayRows, opt.ArrayCols = n, n
		}
	}
	if v, err := strconv.Atoi(meta["repeats"]); err == nil && v > 0 {
		opt.Repeats = v
	}
	if v, err := strconv.Atoi(meta["epochs"]); err == nil && v > 0 {
		opt.RetrainEpochs = v
	}
	if v, err := strconv.Atoi(meta["eval"]); err == nil && v > 0 {
		opt.EvalSamples = v
	}
	opt.CacheDir = cache
	if verbose {
		opt.Log = os.Stderr
	}
	return experiments.NewSuite(opt), nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
