// Command campaign plans, runs, distributes and merges sharded
// fault-sweep campaigns: the figure sweeps of cmd/experiments (fig2,
// fig5a, fig5b, fig5c, the Fig. 6/7/8 "mitigation" study) and the
// manufacturing-yield study of cmd/yield, decomposed into deterministic
// seed-addressed trials by internal/campaign.
//
// Usage:
//
//	campaign plan -c fig5a -quick                      # print the trial list
//	campaign run  -c fig5a -quick -shard 0/2 -o a.jsonl   # run one shard
//	campaign run  -c fig5a -quick -shard 1/2 -o b.jsonl   # run the other
//	campaign merge a.jsonl b.jsonl                     # assemble figures
//
// Distributed mode replaces manual sharding with a coordinator that
// leases shards to worker daemons over HTTP (internal/cluster):
//
//	campaign serve -c fig5a -quick -addr :9090 -o fig5a.jsonl   # coordinator
//	campaign work  -c fig5a -quick -coordinator http://host:9090 -checkpoint wrk/
//
// Workers build the campaign from their own flags; registration
// verifies a configuration fingerprint, so a misconfigured worker is
// rejected instead of corrupting the merge. The merged output is
// byte-identical to a single-process run however many workers ran (and
// died) along the way.
//
// A run appends each completed trial to its JSONL checkpoint (-o) and
// resumes from it after an interruption, skipping completed trial IDs;
// -max bounds one sitting. Shard partials merge bit-identically to a
// single-process run. The "selftest" campaign is a tiny model-free
// synthetic sweep for smoke-testing this machinery (see -trials).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"falvolt/internal/campaign"
	"falvolt/internal/cluster"
	"falvolt/internal/core"
	"falvolt/internal/experiments"
	"falvolt/internal/faults"
	"falvolt/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = planCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "work":
		err = workCmd(os.Args[2:])
	case "merge":
		err = mergeCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <plan|run|serve|work|merge> [flags]

  plan  -c <name> [config flags]            print the deterministic trial list as JSON
  run   -c <name> -o <file> [-shard i/n] [-max N] [config flags]
                                            execute (one shard of) a campaign with
                                            JSONL checkpointing and resume
  serve -c <name> -addr <host:port> [-shards N] [-lease-ttl D] [-o file] [config flags]
                                            coordinate the campaign across HTTP workers,
                                            then print the figures/report
  work  -c <name> -coordinator <url> [-checkpoint dir] [config flags]
                                            worker daemon: lease shards from a
                                            coordinator and stream results back
  merge [-cache dir] [-json file] [-o file] <file>...
                                            merge shard/checkpoint files and print
                                            the figures or yield report

campaigns: %s yield selftest
`, strings.Join(experiments.CampaignNames(), " "))
	os.Exit(2)
}

// sigCtx is the root context of every subcommand: Ctrl-C or SIGTERM
// cancels it, aborting in-flight campaigns promptly (checkpoints keep
// the completed trials, so the same command resumes).
func sigCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// config collects the union of campaign configuration flags.
type config struct {
	name    string
	backend string
	verbose bool

	// Suite (figure campaign) options.
	quick   bool
	seed    int64
	arrayN  int
	epochs  int
	repeats int
	evalN   int
	cache   string

	// Yield campaign options.
	chips      int
	meanFaulty float64
	alpha      float64
	clustered  bool
	threshold  float64
	method     string
	mitEpochs  int
	baseEp     int

	// Selftest campaign options.
	trials int
}

func addConfigFlags(fs *flag.FlagSet, c *config) {
	fs.StringVar(&c.name, "c", "", "campaign: "+strings.Join(experiments.CampaignNames(), " | ")+" | yield | selftest")
	fs.StringVar(&c.backend, "backend", "", tensor.BackendFlagDoc)
	fs.BoolVar(&c.verbose, "v", false, "progress logging")
	fs.BoolVar(&c.quick, "quick", false, "reduced model/dataset sizes (figure campaigns)")
	fs.Int64Var(&c.seed, "seed", 7, "seed")
	fs.IntVar(&c.arrayN, "array", 64, "systolic array side (NxN)")
	fs.IntVar(&c.epochs, "epochs", 0, "retraining epochs (0 = default for mode)")
	fs.IntVar(&c.repeats, "repeats", 0, "fault maps averaged per vulnerability point (0 = default)")
	fs.IntVar(&c.evalN, "eval", 0, "test samples per deployed evaluation (0 = default)")
	fs.StringVar(&c.cache, "cache", "", "directory for baseline snapshots (reused across shards)")
	fs.IntVar(&c.chips, "chips", 12, "yield: number of simulated dies")
	fs.Float64Var(&c.meanFaulty, "mean-faulty", 60, "yield: mean faulty PEs per die")
	fs.Float64Var(&c.alpha, "alpha", 1.0, "yield: defect clustering (smaller = heavier tails)")
	fs.BoolVar(&c.clustered, "clustered", true, "yield: spatially clustered fault maps")
	fs.Float64Var(&c.threshold, "threshold", 0.85, "yield: minimum shipping accuracy")
	fs.StringVar(&c.method, "method", "falvolt", "yield: salvage policy fap | fapit | falvolt")
	fs.IntVar(&c.mitEpochs, "mit-epochs", 4, "yield: retraining epochs per salvaged die")
	fs.IntVar(&c.baseEp, "base-epochs", 12, "yield: baseline training epochs")
	fs.IntVar(&c.trials, "trials", 24, "selftest: synthetic trial count")
}

func (c *config) suite() *experiments.Suite {
	opt := experiments.DefaultOptions()
	if c.quick {
		opt = experiments.QuickOptions()
	}
	opt.Seed = c.seed
	opt.ArrayRows, opt.ArrayCols = c.arrayN, c.arrayN
	opt.CacheDir = c.cache
	if c.epochs > 0 {
		opt.RetrainEpochs = c.epochs
	}
	if c.repeats > 0 {
		opt.Repeats = c.repeats
	}
	if c.evalN > 0 {
		opt.EvalSamples = c.evalN
	}
	if c.verbose {
		opt.Log = os.Stderr
	}
	return experiments.NewSuite(opt)
}

func (c *config) yieldConfig() (core.YieldConfig, error) {
	var m core.Method
	switch strings.ToLower(c.method) {
	case "fap":
		m = core.FaP
	case "fapit":
		m = core.FaPIT
	case "falvolt":
		m = core.FalVolt
	default:
		return core.YieldConfig{}, fmt.Errorf("unknown method %q", c.method)
	}
	return core.YieldConfig{
		Chips:     c.chips,
		Defects:   faults.DefectModel{MeanFaulty: c.meanFaulty, Alpha: c.alpha},
		Clustered: c.clustered,
		Threshold: c.threshold,
		Mitigation: core.Config{
			Method: m, Epochs: c.mitEpochs, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		},
		EvalSamples: 96,
		// +2 matches cmd/yield exactly, so the two tools enumerate
		// identical die populations for the same -seed flag and their
		// shard files / cluster workers interoperate.
		Seed: c.seed + 2,
	}, nil
}

// yieldCampaign wraps the yield study as a campaign. The baseline is
// trained lazily on first worker use, so `plan`, fully-resumed runs and
// coordinators (which never execute trials) never pay for it. Build
// closure and fingerprint are shared with cmd/yield (core.Synthetic*),
// so shard files and cluster workers from either tool interoperate.
func (c *config) yieldCampaign() (campaign.Campaign, core.YieldConfig, error) {
	cfg, err := c.yieldConfig()
	if err != nil {
		return nil, cfg, err
	}
	cam, err := core.LazyYieldCampaign(c.arrayN, c.arrayN, cfg,
		core.SyntheticYieldFingerprint(c.baseEp),
		core.SyntheticYieldBuild(c.seed, c.baseEp, c.arrayN, c.threshold, os.Stderr))
	return cam, cfg, err
}

// campaignCtx bundles a built campaign with whatever its output
// rendering needs (the suite for figure campaigns, the yield config for
// the report).
type campaignCtx struct {
	cam   campaign.Campaign
	suite *experiments.Suite // figure campaigns only
	ycfg  core.YieldConfig   // yield only
}

// buildCampaign constructs the named campaign from the config flags.
func (c *config) buildCampaign() (*campaignCtx, error) {
	switch c.name {
	case "":
		return nil, fmt.Errorf("missing -c <campaign>")
	case "yield":
		cam, ycfg, err := c.yieldCampaign()
		if err != nil {
			return nil, err
		}
		return &campaignCtx{cam: cam, ycfg: ycfg}, nil
	case "selftest":
		return &campaignCtx{cam: campaign.Synthetic(c.trials, c.seed)}, nil
	default:
		suite := c.suite()
		cam, err := suite.Campaign(c.name)
		if err != nil {
			return nil, err
		}
		return &campaignCtx{cam: cam, suite: suite}, nil
	}
}

// printResults renders a complete campaign's merged results: figures
// for the suite campaigns, the report for yield, canonical result JSON
// for selftest.
func (cc *campaignCtx) printResults(results []campaign.Result) error {
	switch {
	case cc.cam.Name() == "yield":
		rep, err := core.YieldFromResults(results, cc.ycfg.Chips, cc.ycfg.Threshold)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	case cc.suite != nil:
		figs, err := cc.suite.Figures(cc.cam.Name(), results)
		if err != nil {
			return err
		}
		for _, f := range figs {
			f.Print(os.Stdout)
		}
		return nil
	default: // selftest
		b, err := campaign.MarshalResults(results)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var c config
	addConfigFlags(fs, &c)
	fs.Parse(args)
	cc, err := c.buildCampaign()
	if err != nil {
		return err
	}
	trials, err := cc.cam.Trials()
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(trials, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	fmt.Fprintf(os.Stderr, "%d trials\n", len(trials))
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var c config
	var (
		out      = fs.String("o", "", "checkpoint/output JSONL (default <name>-shard<i>of<n>.jsonl)")
		shardArg = fs.String("shard", "", "run the i-th of n interleaved trial subsets (i/n)")
		maxNew   = fs.Int("max", 0, "max new trials this sitting (0 = unlimited)")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if err := tensor.SetDefaultByName(c.backend); err != nil {
		return err
	}
	shard, err := campaign.ParseShard(*shardArg)
	if err != nil {
		return err
	}
	if *out == "" {
		*out = fmt.Sprintf("%s-shard%dof%d.jsonl", c.name, shard.Index, max(shard.Count, 1))
	}
	cc, err := c.buildCampaign()
	if err != nil {
		return err
	}
	ctx, stop := sigCtx()
	defer stop()
	opt := campaign.Options{Context: ctx, Shard: shard, Checkpoint: *out, MaxNew: *maxNew}
	if c.verbose {
		opt.Log = os.Stderr
	}
	rr, err := campaign.Run(cc.cam, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign %s shard %s: %d/%d trials complete (%d resumed, %d run) -> %s\n",
		c.name, shard, len(rr.Results), rr.Planned, rr.Resumed, rr.Executed, *out)
	if !rr.Complete {
		fmt.Fprintln(os.Stderr, "partial: rerun the same command to resume")
		return nil
	}
	if !shard.IsWhole() {
		fmt.Fprintf(os.Stderr, "shard complete: merge all shard files with `campaign merge`\n")
		return nil
	}
	return cc.printResults(rr.Results)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var c config
	var (
		addr     = fs.String("addr", ":9090", "coordinator listen address")
		shards   = fs.Int("shards", 0, "shard count (0 = auto; more shards = finer reassignment)")
		leaseTTL = fs.Duration("lease-ttl", 0, "shard lease deadline without a heartbeat (0 = default)")
		out      = fs.String("o", "", "checkpoint/output JSONL (default <name>-cluster.jsonl); resumes")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if *out == "" {
		*out = c.name + "-cluster.jsonl"
	}
	cc, err := c.buildCampaign()
	if err != nil {
		return err
	}
	ctx, stop := sigCtx()
	defer stop()
	co := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Addr: *addr, Shards: *shards, LeaseTTL: *leaseTTL, Log: os.Stderr,
	})
	opt := campaign.Options{Context: ctx, Runner: co, Checkpoint: *out, Log: os.Stderr}
	rr, err := campaign.Run(cc.cam, opt)
	if err != nil {
		return err
	}
	if rr.Executed == 0 && rr.Planned > 0 {
		// Nothing was pending, so the runner — and thus the HTTP server
		// — never started; workers pointed here will see connection
		// refused, not StatusDone.
		fmt.Fprintf(os.Stderr, "checkpoint %s already complete: no coordinator was started; stop any waiting workers\n", *out)
	}
	fmt.Fprintf(os.Stderr, "campaign %s: %d/%d trials complete -> %s\n",
		c.name, len(rr.Results), rr.Planned, *out)
	return cc.printResults(rr.Results)
}

func workCmd(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	var c config
	var (
		coord   = fs.String("coordinator", "", "coordinator base URL (http://host:port)")
		name    = fs.String("name", "", "worker display name (default host-pid)")
		ckptDir = fs.String("checkpoint", "", "directory for local per-shard JSONL checkpoints (resume on restart)")
		poll    = fs.Duration("poll", 0, "idle poll interval (0 = default)")
	)
	addConfigFlags(fs, &c)
	fs.Parse(args)
	if *coord == "" {
		return fmt.Errorf("work needs -coordinator <url>")
	}
	if err := tensor.SetDefaultByName(c.backend); err != nil {
		return err
	}
	cc, err := c.buildCampaign()
	if err != nil {
		return err
	}
	ctx, stop := sigCtx()
	defer stop()
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: *coord, Name: *name, CheckpointDir: *ckptDir,
		Poll: *poll, Log: os.Stderr,
	})
	return w.Run(ctx, cc.cam)
}

func mergeCmd(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	var (
		cache   = fs.String("cache", "", "baseline snapshot dir (avoids retraining for mitigation merges)")
		jsonOut = fs.String("json", "", "also write merged figures/report as JSON to this file (atomic)")
		outFile = fs.String("o", "", "also write the merged results as one checkpoint JSONL (atomic)")
		backend = fs.String("backend", "", tensor.BackendFlagDoc)
		verbose = fs.Bool("v", false, "progress logging")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge needs at least one checkpoint file")
	}
	if err := tensor.SetDefaultByName(*backend); err != nil {
		return err
	}
	header, results, err := campaign.MergeFiles(fs.Args()...)
	if err != nil {
		return err
	}
	if missing := campaign.Missing(results, header.Trials); len(missing) > 0 {
		return fmt.Errorf("merged results cover %d/%d trials (missing ids start at %d); run the remaining shards first",
			len(results), header.Trials, missing[0])
	}
	fmt.Fprintf(os.Stderr, "merged %d files: campaign %s, %d trials\n", fs.NArg(), header.Campaign, len(results))
	if *outFile != "" {
		// Crash-safe: an interrupted merge never leaves a torn artifact.
		if err := campaign.WriteCheckpointAtomic(*outFile, header, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged checkpoint -> %s\n", *outFile)
	}

	switch header.Campaign {
	case "yield":
		chips, err1 := strconv.Atoi(header.Meta["chips"])
		threshold, err2 := strconv.ParseFloat(header.Meta["threshold"], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("yield checkpoint header missing chips/threshold metadata")
		}
		rep, err := core.YieldFromResults(results, chips, threshold)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		if *jsonOut != "" {
			return writeJSON(*jsonOut, rep)
		}
		return nil
	case "selftest":
		b, err := campaign.MarshalResults(results)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		if *jsonOut != "" {
			return campaign.WriteFileAtomic(*jsonOut, append(b, '\n'))
		}
		return nil
	}

	suite, err := suiteFromMeta(header.Meta, *cache, *verbose)
	if err != nil {
		return err
	}
	figs, err := suite.Figures(header.Campaign, results)
	if err != nil {
		return err
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	if *jsonOut != "" {
		return writeJSON(*jsonOut, figs)
	}
	return nil
}

// suiteFromMeta reconstructs the suite a figure campaign ran with from
// its checkpoint metadata, so merge needs no matching flags.
func suiteFromMeta(meta map[string]string, cache string, verbose bool) (*experiments.Suite, error) {
	quick := meta["quick"] == "true"
	opt := experiments.DefaultOptions()
	if quick {
		opt = experiments.QuickOptions()
	}
	if v, err := strconv.ParseInt(meta["seed"], 10, 64); err == nil {
		opt.Seed = v
	}
	if rows, _, ok := strings.Cut(meta["array"], "x"); ok {
		if n, err := strconv.Atoi(rows); err == nil {
			opt.ArrayRows, opt.ArrayCols = n, n
		}
	}
	if v, err := strconv.Atoi(meta["repeats"]); err == nil && v > 0 {
		opt.Repeats = v
	}
	if v, err := strconv.Atoi(meta["epochs"]); err == nil && v > 0 {
		opt.RetrainEpochs = v
	}
	if v, err := strconv.Atoi(meta["eval"]); err == nil && v > 0 {
		opt.EvalSamples = v
	}
	opt.CacheDir = cache
	if verbose {
		opt.Log = os.Stderr
	}
	return experiments.NewSuite(opt), nil
}

// writeJSON writes indented JSON crash-safely (temp file + fsync +
// rename), so an interrupted merge never leaves a half-written file.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, append(b, '\n'))
}
