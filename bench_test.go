package falvolt

// Benchmarks regenerating the machinery behind every figure of the paper,
// plus micro-benchmarks of the hot paths. One benchmark per figure runs a
// representative slice of that experiment (reduced sizes so `go test
// -bench=.` completes quickly); cmd/experiments regenerates the full data.
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"sync"
	"testing"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/mapping"
	"falvolt/internal/mitigation"
	"falvolt/internal/snn"
	"falvolt/internal/spec"
	"falvolt/internal/systolic"
	"falvolt/internal/tensor"
)

// fixture is a small trained-enough model + data shared by figure benches.
// Training is 3 epochs: enough for non-degenerate spike traffic without
// dominating benchmark setup time.
type fixture struct {
	model *snn.Model
	state *snn.NetworkState
	ds    *datasets.Dataset
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		spec := snn.MNISTSpec()
		spec.T = 2
		spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
		model, err := snn.Build(spec, rng)
		if err != nil {
			panic(err)
		}
		ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 96, Test: 48, T: 2, Seed: 3})
		if err != nil {
			panic(err)
		}
		if _, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
			Epochs: 3, LR: 0.02, Rng: rand.New(rand.NewSource(2)),
		}); err != nil {
			panic(err)
		}
		fix = &fixture{model: model, state: model.Net.State(), ds: ds}
	})
	return fix
}

func (f *fixture) restore(b *testing.B) {
	b.Helper()
	f.model.Net.Undeploy()
	if err := f.model.Net.LoadState(f.state); err != nil {
		b.Fatal(err)
	}
}

func newArray(b *testing.B, side int) *systolic.Array {
	b.Helper()
	arr, err := systolic.New(systolic.Config{Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true})
	if err != nil {
		b.Fatal(err)
	}
	return arr
}

func msbFaults(b *testing.B, side, n int, seed int64) *faults.Map {
	b.Helper()
	fm, err := faults.Generate(side, side, faults.GenSpec{
		NumFaulty: n, BitMode: faults.MSBBits, Pol: faults.StuckAt1,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return fm
}

// BenchmarkFig2FixedVthRetrainEpoch measures one epoch of the Fig. 2
// fixed-threshold retraining sweep (FaPIT at a forced Vth).
func BenchmarkFig2FixedVthRetrainEpoch(b *testing.B) {
	f := getFixture(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 300, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := core.Mitigate(f.model, arr, fm, f.ds.Train[:48], f.ds.Test[:24], core.Config{
			Method: core.FaPIT, Epochs: 1, FixedVth: 0.55, LR: 0.01, BatchSize: 16,
			Rng: rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aBitPoint measures one (bit, polarity) point of Fig. 5a:
// a faulty-array evaluation with stuck bit 16.
func BenchmarkFig5aBitPoint(b *testing.B) {
	f := getFixture(b)
	f.restore(b)
	arr := newArray(b, 32)
	fm, err := faults.Generate(32, 32, faults.GenSpec{
		NumFaulty: 16, BitMode: faults.FixedBit, Bit: 16, Pol: faults.StuckAt1,
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateFaulty(f.model, arr, fm, f.ds.Test[:24], false, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bCountPoint measures one fault-count point of Fig. 5b.
func BenchmarkFig5bCountPoint(b *testing.B) {
	f := getFixture(b)
	f.restore(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateFaulty(f.model, arr, fm, f.ds.Test[:24], false, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5cArraySizePoint measures one array-size point of Fig. 5c
// (the small-array end, where fault recurrence is heaviest).
func BenchmarkFig5cArraySizePoint(b *testing.B) {
	f := getFixture(b)
	f.restore(b)
	arr := newArray(b, 8)
	fm := msbFaults(b, 8, 4, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateFaulty(f.model, arr, fm, f.ds.Test[:24], false, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6FalVoltEpoch measures one FalVolt retraining epoch — the
// unit of work behind the optimized thresholds of Fig. 6 and the FalVolt
// bars of Fig. 7.
func BenchmarkFig6FalVoltEpoch(b *testing.B) {
	f := getFixture(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 300, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := core.Mitigate(f.model, arr, fm, f.ds.Train[:48], f.ds.Test[:24], core.Config{
			Method: core.FalVolt, Epochs: 1, LR: 0.01, BatchSize: 16,
			Rng: rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7FaP measures the retraining-free FaP pipeline of Fig. 7
// (mask derivation + pruning + bypassed deployment + evaluation).
func BenchmarkFig7FaP(b *testing.B) {
	f := getFixture(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 300, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := core.Mitigate(f.model, arr, fm, f.ds.Train[:48], f.ds.Test[:24], core.Config{
			Method: core.FaP, Rng: rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8CurveEpoch measures one tracked epoch of the Fig. 8
// convergence curves (retrain epoch + float-path evaluation).
func BenchmarkFig8CurveEpoch(b *testing.B) {
	f := getFixture(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 300, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := core.Mitigate(f.model, arr, fm, f.ds.Train[:48], f.ds.Test[:24], core.Config{
			Method: core.FalVolt, Epochs: 1, LR: 0.01, BatchSize: 16,
			TrackCurve: true, CurveEvalSize: 24,
			Rng: rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBaselineTrainEpoch measures one epoch of fault-free training
// (the §V-A baseline stage) on an explicit engine (nil = default).
func benchBaselineTrainEpoch(b *testing.B, eng tensor.Backend) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := snn.Train(f.model.Net, f.ds.Train[:48], snn.TrainConfig{
			Epochs: 1, BatchSize: 16, LR: 0.01, Classes: 10,
			Rng: rand.New(rand.NewSource(int64(i))), Engine: eng,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	f.model.Net.SetEngine(nil)
}

func BenchmarkBaselineTrainEpoch(b *testing.B)       { benchBaselineTrainEpoch(b, nil) }
func BenchmarkBaselineTrainEpochSerial(b *testing.B) { benchBaselineTrainEpoch(b, tensor.Serial()) }
func BenchmarkBaselineTrainEpochParallel(b *testing.B) {
	benchBaselineTrainEpoch(b, tensor.NewParallel(0))
}

// benchBaselineTrainEpochReplicas measures the same epoch on the
// data-parallel replica engine: each 48-sample batch splits into eight
// 6-sample micro-batches dispatched over the engine's lanes, with
// gradients reduced in fixed micro-batch order. The serial/parallel
// pair isolates the lane speedup — both produce bit-identical weights.
func benchBaselineTrainEpochReplicas(b *testing.B, eng tensor.Backend) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		if _, err := snn.Train(f.model.Net, f.ds.Train[:48], snn.TrainConfig{
			Epochs: 1, BatchSize: 48, LR: 0.01, Classes: 10,
			Rng: rand.New(rand.NewSource(int64(i))), Engine: eng,
			Replicas: 8, MicroBatch: 6,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	f.model.Net.SetEngine(nil)
}

func BenchmarkBaselineTrainEpochReplicasSerial(b *testing.B) {
	benchBaselineTrainEpochReplicas(b, tensor.Serial())
}
func BenchmarkBaselineTrainEpochReplicasParallel(b *testing.B) {
	benchBaselineTrainEpochReplicas(b, tensor.NewParallel(0))
}

// --- micro-benchmarks of the hot paths ---

func benchSystolicForwardAt(b *testing.B, density float64, faulty, bypass, dense bool, eng tensor.Backend) {
	arr := newArray(b, 64)
	arr.SetEngine(eng)
	if faulty {
		fm := msbFaults(b, 64, 128, 20)
		if err := arr.InjectFaults(fm); err != nil {
			b.Fatal(err)
		}
		arr.SetBypass(bypass)
	}
	arr.SetDenseReference(dense)
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(32, 256)
	for i := range x.Data {
		if rng.Float64() < density {
			x.Data[i] = 1
		}
	}
	w := tensor.New(64, 256)
	w.RandNormal(rng, 0.5)
	wm := systolic.QuantizeMatrix(w, fixed.Q16x16)
	b.SetBytes(int64(32 * 256 * 64 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Forward(x, wm, true)
	}
}

func benchSystolicForward(b *testing.B, faulty, bypass bool, eng tensor.Backend) {
	benchSystolicForwardAt(b, 0.3, faulty, bypass, false, eng)
}

func BenchmarkSystolicForwardClean(b *testing.B)  { benchSystolicForward(b, false, false, nil) }
func BenchmarkSystolicForwardFaulty(b *testing.B) { benchSystolicForward(b, true, false, nil) }
func BenchmarkSystolicForwardFaultySerial(b *testing.B) {
	benchSystolicForward(b, true, false, tensor.Serial())
}
func BenchmarkSystolicForwardFaultyParallel(b *testing.B) {
	benchSystolicForward(b, true, false, tensor.NewParallel(0))
}
func BenchmarkSystolicForwardBypassed(b *testing.B) { benchSystolicForward(b, true, true, nil) }

// Memory bit-flip pair: weight-SRAM flips recompile the weight tiles
// once per fault instance, after which Forward runs from the flipped
// tiles — steady-state cost should track the stuck-at faulty path.
func benchSystolicForwardBitFlip(b *testing.B, eng tensor.Backend) {
	arr := newArray(b, 64)
	arr.SetEngine(eng)
	rates, err := faults.BitRates(faults.ProfileDecay, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	if err := arr.InjectMemoryFaults(&faults.MemoryFaults{Seed: 21, BitRate: rates}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(32, 256)
	for i := range x.Data {
		if rng.Float64() < 0.3 {
			x.Data[i] = 1
		}
	}
	w := tensor.New(64, 256)
	w.RandNormal(rng, 0.5)
	wm := systolic.QuantizeMatrix(w, fixed.Q16x16)
	b.SetBytes(int64(32 * 256 * 64 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Forward(x, wm, true)
	}
}

func BenchmarkSystolicForwardBitFlipSerial(b *testing.B) {
	benchSystolicForwardBitFlip(b, tensor.Serial())
}
func BenchmarkSystolicForwardBitFlipParallel(b *testing.B) {
	benchSystolicForwardBitFlip(b, tensor.NewParallel(0))
}

// Sparse vs Dense pairs: the event-list plane against the preserved
// pre-change reference path, across spike densities. Sparse/Dense outputs
// are bit-identical (see internal/systolic sparse_test.go); only the
// wall-clock differs.
func BenchmarkSystolicForwardCleanSparse10(b *testing.B) {
	benchSystolicForwardAt(b, 0.1, false, false, false, nil)
}
func BenchmarkSystolicForwardCleanDense10(b *testing.B) {
	benchSystolicForwardAt(b, 0.1, false, false, true, nil)
}
func BenchmarkSystolicForwardCleanSparse100(b *testing.B) {
	benchSystolicForwardAt(b, 1.0, false, false, false, nil)
}
func BenchmarkSystolicForwardCleanDense100(b *testing.B) {
	benchSystolicForwardAt(b, 1.0, false, false, true, nil)
}
func BenchmarkSystolicForwardFaultySparse10(b *testing.B) {
	benchSystolicForwardAt(b, 0.1, true, false, false, nil)
}
func BenchmarkSystolicForwardFaultyDense10(b *testing.B) {
	benchSystolicForwardAt(b, 0.1, true, false, true, nil)
}
func BenchmarkSystolicForwardFaultySparse30(b *testing.B) {
	benchSystolicForwardAt(b, 0.3, true, false, false, nil)
}
func BenchmarkSystolicForwardFaultyDense30(b *testing.B) {
	benchSystolicForwardAt(b, 0.3, true, false, true, nil)
}

// Salvage pair: one head-to-head benchmark cell through the pluggable
// mitigation seam — a zero-retraining strategy (respawn's remap) and a
// retraining one (falvolt, one epoch). Restore → inject → Apply →
// evaluate, exactly the salvage campaign's RunTrial shape.
func benchSalvage(b *testing.B, mitSpec spec.MitigationSpec, epochs int) {
	f := getFixture(b)
	arr := newArray(b, 32)
	fm := msbFaults(b, 32, 200, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.restore(b)
		arr.ClearFaults()
		arr.SetBypass(false)
		if err := arr.InjectFaults(fm); err != nil {
			b.Fatal(err)
		}
		mit, err := mitigation.New(mitSpec.EffectiveKind(), mitigation.Options{
			Train: f.ds.Train[:48], Test: f.ds.Test[:24],
			Epochs: epochs, BatchSize: 16, LR: 0.01, ClipNorm: 5,
			Rng: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mit.Apply(f.model, arr, arr.FaultMap()); err != nil {
			b.Fatal(err)
		}
		snn.EvaluateWith(nil, f.model.Net, f.ds.Test[:24], 24)
		f.model.Net.Undeploy()
	}
}

func BenchmarkSalvageRespawn(b *testing.B) {
	benchSalvage(b, spec.MitigationSpec{Kind: "respawn"}, 0)
}
func BenchmarkSalvageFalVoltEpoch(b *testing.B) {
	benchSalvage(b, spec.MitigationSpec{Kind: "falvolt"}, 1)
}

func BenchmarkScanTest256(b *testing.B) {
	arr := newArray(b, 256)
	fm := msbFaults(b, 256, 1000, 22)
	if err := arr.InjectFaults(fm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.ScanTest()
	}
}

func BenchmarkDeriveMask(b *testing.B) {
	fm := msbFaults(b, 256, 1000, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Derive(fm, 512, 1152); err != nil {
			b.Fatal(err)
		}
	}
}

func benchConvForward(b *testing.B, eng tensor.Backend) {
	rng := rand.New(rand.NewSource(24))
	conv, err := snn.NewConv2D(8, 16, 16, 16, 3, 1, 1, false, rng)
	if err != nil {
		b.Fatal(err)
	}
	conv.SetEngine(eng)
	x := tensor.New(16, 8, 16, 16)
	x.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvForward(b *testing.B)         { benchConvForward(b, nil) }
func BenchmarkConvForwardSerial(b *testing.B)   { benchConvForward(b, tensor.Serial()) }
func BenchmarkConvForwardParallel(b *testing.B) { benchConvForward(b, tensor.NewParallel(0)) }

func BenchmarkPLIFForward(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	node := snn.NewPLIFNode(snn.DefaultNeuronConfig())
	x := tensor.New(16, 2048)
	x.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.Forward(x, false)
	}
}

func BenchmarkFaultMapGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	spec := faults.GenSpec{NumFaulty: 4096, BitMode: faults.MSBBits, PolMode: faults.RandomPol}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faults.Generate(256, 256, spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datasets.SyntheticDVSGesture(datasets.Config{
			Train: 22, Test: 11, H: 16, W: 16, T: 6, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
