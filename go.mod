module falvolt

go 1.24
