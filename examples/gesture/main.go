// Gesture: the neuromorphic event-stream pipeline end to end.
//
// Generates the synthetic DVS-Gesture dataset (11 motion classes encoded
// purely in ON/OFF event dynamics), trains the deeper conv-block
// classifier on it, deploys inference onto a faulty systolic array, and
// recovers accuracy with FalVolt — the hardest of the paper's three
// workloads.
//
//	go run ./examples/gesture
package main

import (
	"fmt"
	"log"
	"math/rand"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

func main() {
	const seed = 31
	const side = 64

	// 16x16 frames with three conv blocks keep the example quick; pass the
	// full 32x32 five-block spec for the paper-scale run.
	ds, err := datasets.SyntheticDVSGesture(datasets.Config{
		Train: 220, Test: 88, H: 16, W: 16, T: 6, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := snn.DVSGestureSpec()
	spec.InH, spec.InW, spec.T = 16, 16, 6
	spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8, 16}, 32
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training gesture classifier (%d classes: %v ...)\n",
		ds.Classes, datasets.GestureClasses[:3])
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: 16, LR: 0.02, Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline accuracy %.3f\n", baseAcc)

	arr := systolic.MustNew(systolic.Config{Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true})
	fm, err := faults.GenerateRate(side, side, 0.30, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		log.Fatal(err)
	}

	faulty, err := core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unmitigated on faulty array: %.3f\n", faulty)

	rep, err := core.Mitigate(model, arr, fm, ds.Train, ds.Test, core.Config{
		Method: core.FalVolt, Epochs: 10, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		Rng: rand.New(rand.NewSource(seed + 3)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after FalVolt: %.3f (pruned %.1f%%)\n", rep.Accuracy, rep.PrunedFraction*100)
	for i, name := range model.SpikingNames {
		fmt.Printf("  %-7s Vth = %.3f\n", name, rep.Vths[i])
	}
}
