// Mitigation: FaP vs FaPIT vs FalVolt head to head (the paper's Fig. 7
// comparison on one dataset), starting every method from the same trained
// baseline and the same fault map, and reporting convergence speed
// (the Fig. 8 claim: FalVolt reaches the target in roughly half the
// epochs of FaPIT).
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

func main() {
	const seed = 23
	const side = 64
	const faultRate = 0.30

	ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 320, Test: 128, T: 4, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	spec := snn.MNISTSpec()
	spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training baseline...")
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: 12, LR: 0.02, Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline := model.Net.State()
	fmt.Printf("baseline accuracy %.3f\n", baseAcc)

	arr := systolic.MustNew(systolic.Config{Rows: side, Cols: side, Format: fixed.Q16x16, Saturate: true})
	fm, err := faults.GenerateRate(side, side, faultRate, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", fm)

	target := baseAcc - 0.05 // "close to baseline" recovery target
	for _, method := range []core.Method{core.FaP, core.FaPIT, core.FalVolt} {
		model.Net.Undeploy()
		if err := model.Net.LoadState(baseline); err != nil {
			log.Fatal(err)
		}
		rep, err := core.Mitigate(model, arr, fm, ds.Train, ds.Test, core.Config{
			Method: method, Epochs: 10, LR: 0.01, BatchSize: 16, ClipNorm: 5,
			TrackCurve: true, CurveEvalSize: 64,
			Rng: rand.New(rand.NewSource(seed + 3)),
		})
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-8s accuracy %.3f", method, rep.Accuracy)
		if method != core.FaP {
			if e := core.EpochsToReachTarget(rep.Curve, target); e >= 0 {
				line += fmt.Sprintf("  (reached %.3f at epoch %d)", target, e)
			} else {
				line += fmt.Sprintf("  (did not reach %.3f in %d epochs)", target, 10)
			}
		}
		fmt.Println(line)
	}
}
