// Quickstart: the smallest end-to-end FalVolt walkthrough.
//
// It trains a tiny PLIF-SNN on synthetic MNIST, injects worst-case
// stuck-at faults into 30% of a 32x32 systolic array's PEs, shows the
// accuracy collapse, and then recovers it with FalVolt (fault-aware
// pruning + retraining with learned per-layer threshold voltages).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"falvolt/internal/core"
	"falvolt/internal/datasets"
	"falvolt/internal/faults"
	"falvolt/internal/fixed"
	"falvolt/internal/snn"
	"falvolt/internal/systolic"
)

func main() {
	const seed = 42

	// 1. A small dataset and model. SyntheticMNIST stands in for MNIST
	//    (offline environment); the model is the paper's encoder + 2 conv
	//    blocks + 2 FC classifier, scaled down.
	ds, err := datasets.SyntheticMNIST(datasets.Config{Train: 320, Test: 128, T: 4, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	spec := snn.MNISTSpec()
	spec.EncoderC, spec.BlockC, spec.FCHidden = 4, []int{8, 8}, 32
	model, err := snn.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the fault-free baseline.
	fmt.Println("training baseline...")
	baseAcc, err := core.TrainBaseline(model, ds.Train, ds.Test, core.BaselineConfig{
		Epochs: 12, LR: 0.02, Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline accuracy: %.3f\n", baseAcc)

	// 3. A systolic accelerator with stuck-at-1 faults in the high-order
	//    accumulator bits of 30% of its PEs.
	arr := systolic.MustNew(systolic.Config{Rows: 32, Cols: 32, Format: fixed.Q16x16, Saturate: true})
	fm, err := faults.GenerateRate(32, 32, 0.30, faults.GenSpec{
		BitMode: faults.MSBBits, Pol: faults.StuckAt1, PolMode: faults.FixedPol,
	}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fm)

	faultyAcc, err := core.EvaluateFaulty(model, arr, fm, ds.Test, false, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy on the faulty array (no mitigation): %.3f\n", faultyAcc)

	// 4. FalVolt: prune the weights mapped to faulty PEs, bypass those
	//    PEs, retrain the rest while learning each layer's threshold.
	rep, err := core.Mitigate(model, arr, fm, ds.Train, ds.Test, core.Config{
		Method: core.FalVolt, Epochs: 8, LR: 0.01, BatchSize: 16, ClipNorm: 5,
		Rng: rand.New(rand.NewSource(seed + 3)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after FalVolt: accuracy %.3f (pruned %.1f%% of weights)\n",
		rep.Accuracy, rep.PrunedFraction*100)
	fmt.Println("optimized threshold voltages:")
	for i, name := range model.SpikingNames {
		fmt.Printf("  %-6s Vth = %.3f\n", name, rep.Vths[i])
	}
}
